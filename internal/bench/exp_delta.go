package bench

import (
	"fmt"
	"io"
	"time"

	"credo/internal/bp"
	"credo/internal/enginetest"
	"credo/internal/gen"
	"credo/internal/graph"
)

// The delta study (EXPERIMENTS.md X8): incremental re-convergence on a
// mutating graph vs paying a full re-run after every mutation batch.
// Seeded mutation streams — the gen.Mutations mix of edge adds, prior
// drifts, evidence arrivals and retractions — replay against an
// already-converged graph in batches; after each batch the delta path
// re-converges from the frontier TakeDeltaSeeds hands back (changed
// nodes plus out-neighbours), while the control clones the same mutated
// graph, resets beliefs and converges cold. The expectation under test:
// delta re-convergence cost scales with the perturbed frontier, not
// graph size, so at bounded churn it applies strictly fewer belief
// updates than the rebuild-and-rerun a static-graph system is forced
// into.

// deltaStats aggregates one (graph, churn, engine) stream.
type deltaStats struct {
	mutsPerBatch int
	batches      int // batches that produced a non-empty frontier
	frontier     int64
	deltaUpd     int64
	coldUpd      int64
	deltaWall    time.Duration
	coldWall     time.Duration
	deltaConv    int
	coldConv     int
	maxDiff      float64 // worst delta-vs-cold fixpoint L1 gap across batches
}

// runDeltaStream converges base cold, then replays muts in batches,
// re-converging from the delta frontier after each and racing a cold
// full run of the identically-mutated clone as the control.
func runDeltaStream(base *graph.Graph, eng enginetest.DeltaEngine, o bp.Options, muts []gen.Mutation, batches int) (deltaStats, error) {
	var st deltaStats
	g := base.Clone()
	if res := eng.Run(g, o, nil); !res.Converged {
		return st, fmt.Errorf("bench: %s initial cold run did not converge (delta %g)", eng.Name, res.FinalDelta)
	}
	per := (len(muts) + batches - 1) / batches
	st.mutsPerBatch = per
	for at := 0; at < len(muts); at += per {
		end := at + per
		if end > len(muts) {
			end = len(muts)
		}
		for _, m := range muts[at:end] {
			if err := m.Apply(g); err != nil {
				return st, fmt.Errorf("bench: apply %s: %w", m.Kind, err)
			}
		}
		seeds := g.TakeDeltaSeeds()
		if len(seeds) == 0 {
			continue
		}
		st.batches++
		st.frontier += int64(len(seeds))

		start := time.Now()
		res := eng.Run(g, o, seeds)
		st.deltaWall += time.Since(start)
		st.deltaUpd += res.Ops.NodesProcessed
		if res.Converged {
			st.deltaConv++
		}

		// The control: what a static-graph deployment pays for the same
		// batch — rebuild (here: clone, identical numerics) and re-run
		// from priors.
		c := g.Clone()
		c.ResetBeliefs()
		start = time.Now()
		cres := eng.Run(c, o, nil)
		st.coldWall += time.Since(start)
		st.coldUpd += cres.Ops.NodesProcessed
		if cres.Converged {
			st.coldConv++
		}
		if d := float64(enginetest.MaxBeliefDiff(c, g)); d > st.maxDiff {
			st.maxDiff = d
		}
	}
	return st, nil
}

// RunDeltaStudy is the -exp delta experiment: dynamic-graph incremental
// re-convergence vs full re-run across mutation churn rates. The
// deterministic table (sequential residual engine, identical run to
// run) carries the study's claim — the delta/cold update ratio stays
// below 1x through 25% churn — and the L1 column tracks fixpoint
// fidelity (on loopy graphs heavy churn can leave the warm path in a
// different basin than a cold start; drift past the cross-engine
// tolerance at high churn is a finding, not a failure). The measured
// table adds wall clock and the parallel delta engines.
func RunDeltaStudy(w io.Writer, cfg Config) error {
	type deltaCase struct {
		name string
		g    *graph.Graph
	}
	var cases []deltaCase
	side := 32
	for side*side > cfg.Tier.MaxNodes {
		side /= 2
	}
	grid, err := gen.Grid(side, side, gen.Config{Seed: cfg.Seed, States: 2, Shared: true, Keep: 0.6})
	if err != nil {
		return err
	}
	cases = append(cases, deltaCase{fmt.Sprintf("grid%dx%d", side, side), grid})
	spec, ok := specByAbbrev("GO")
	if !ok {
		return fmt.Errorf("bench: missing spec GO")
	}
	social, err := spec.Generate(2, cfg.Tier, cfg.Seed)
	if err != nil {
		return err
	}
	cases = append(cases, deltaCase{spec.Abbrev, social})

	fmt.Fprintf(w, "delta — incremental re-convergence vs full re-run across mutation churn (tier %s, %d workers)\n",
		cfg.Tier.Name, cfg.PoolWorkers)
	fmt.Fprintln(w, "mutation mix: ~25% edge adds, 35% prior drifts, 25% evidence arrivals, 15% retractions")
	fmt.Fprintln(w, "churn = mutations per batch as a percentage of nodes; 4 batches per stream")

	const batches = 4
	churns := []int{1, 5, 25}
	engines := enginetest.DeltaEngines(cfg.PoolWorkers)
	type row struct {
		name     string
		churnPct int
		nodes    int
		stats    map[string]deltaStats
	}
	var rows []row
	for _, dc := range cases {
		n := dc.g.NumNodes
		for _, churn := range churns {
			per := n * churn / 100
			if per < 1 {
				per = 1
			}
			muts := gen.Mutations(dc.g, per*batches, gen.Config{Seed: cfg.Seed + int64(churn)})
			r := row{name: dc.name, churnPct: churn, nodes: n, stats: make(map[string]deltaStats)}
			for _, eng := range engines {
				st, err := runDeltaStream(dc.g, eng, cfg.Options, muts, batches)
				if err != nil {
					return fmt.Errorf("%s churn %d%%: %w", dc.name, churn, err)
				}
				r.stats[eng.Name] = st
			}
			rows = append(rows, r)
		}
	}

	fmt.Fprintf(w, "\nsequential residual engine, deterministic (cold = clone, reset, full re-run per batch):\n")
	fmt.Fprintf(w, "%-10s %6s %8s %8s %10s %12s %12s %11s %6s %9s\n",
		"graph", "churn", "nodes", "muts/b", "frontier/b", "delta upd/b", "cold upd/b", "delta/cold", "conv", "maxL1")
	fewer, within := 0, 0
	for _, r := range rows {
		st := r.stats["residual"]
		b := int64(st.batches)
		if b == 0 {
			b = 1
		}
		if st.deltaUpd < st.coldUpd {
			fewer++
		}
		if st.maxDiff <= float64(enginetest.DefaultTol) {
			within++
		}
		fmt.Fprintf(w, "%-10s %5d%% %8d %8d %10d %12d %12d %11s %3d/%-2d %9.2g\n",
			r.name, r.churnPct, r.nodes, st.mutsPerBatch,
			st.frontier/b, st.deltaUpd/b, st.coldUpd/b,
			fmtRatio(float64(st.deltaUpd)/float64(st.coldUpd)),
			st.deltaConv, st.batches, st.maxDiff)
	}
	fmt.Fprintf(w, "delta strictly fewer updates than full re-run: %d/%d rows; within cross-engine tolerance (%.2g): %d/%d\n",
		fewer, len(rows), float64(enginetest.DefaultTol), within, len(rows))

	fmt.Fprintln(w, "\nmeasured wall-clock on this host (varies run to run; pool and relax are parallel, their update counts vary too):")
	fmt.Fprintf(w, "%-10s %6s %12s %12s %9s %12s %12s\n",
		"graph", "churn", "delta/b", "cold/b", "speedup", "pool Δ/b", "relax Δ/b")
	for _, r := range rows {
		res := r.stats["residual"]
		b := time.Duration(res.batches)
		if b == 0 {
			b = 1
		}
		pool, relax := r.stats["poolbp"], r.stats["relaxbp"]
		pb, rb := time.Duration(pool.batches), time.Duration(relax.batches)
		if pb == 0 {
			pb = 1
		}
		if rb == 0 {
			rb = 1
		}
		fmt.Fprintf(w, "%-10s %5d%% %12s %12s %9s %12s %12s\n",
			r.name, r.churnPct,
			fmtDur(res.deltaWall/b), fmtDur(res.coldWall/b),
			fmtRatio(float64(res.coldWall)/float64(res.deltaWall)),
			fmtDur(pool.deltaWall/pb), fmtDur(relax.deltaWall/rb))
	}
	return nil
}
