package bench

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"
)

// Experiment is one regenerable paper artifact.
type Experiment struct {
	// ID is the -exp flag value (e.g. "fig7").
	ID string
	// Title names the paper artifact.
	Title string
	// Run executes the experiment and writes its table(s) to w.
	Run func(w io.Writer, cfg Config) error
}

// Experiments returns every experiment in DESIGN.md §5 order.
func Experiments() []Experiment {
	return []Experiment{
		{ID: "table1", Title: "Table 1: benchmark graph suite", Run: RunTable1},
		{ID: "algocmp", Title: "§2.1.1: traditional vs loopy BP", Run: RunAlgoCmp},
		{ID: "sharedmatrix", Title: "§2.2: shared joint matrix refinement", Run: RunSharedMatrix},
		{ID: "parsers", Title: "§3.2.1: input format comparison", Run: RunParsers},
		{ID: "ingest", Title: "parallel chunked mtxbp ingest vs sequential streaming", Run: RunIngest},
		{ID: "aossoa", Title: "§3.4: AoS vs SoA data layout", Run: RunAoSSoA},
		{ID: "openmp", Title: "§2.4: OpenMP and OpenACC parallelization", Run: RunOpenMP},
		{ID: "pool", Title: "persistent worker-pool engine vs fork-join (§2.4 revisited)", Run: RunPool},
		{ID: "relax", Title: "relaxed-priority residual scheduling vs synchronous sweeps", Run: RunRelax},
		{ID: "telemetry", Title: "engine telemetry: probe layer end-to-end", Run: RunTelemetry},
		{ID: "fig7", Title: "Figure 7: C and CUDA runtimes", Run: RunFig7},
		{ID: "fig8", Title: "Figure 8: speedup distribution by beliefs", Run: RunFig8},
		{ID: "fig9", Title: "Figure 9: work-queue speedups", Run: RunFig9},
		{ID: "fig4", Title: "Figure 4: feature/label covariances", Run: RunFig4},
		{ID: "fig5", Title: "Figure 5: random-forest feature importances", Run: RunFig5},
		{ID: "fig6", Title: "Figure 6: depth-2 decision tree", Run: RunFig6},
		{ID: "fig10", Title: "Figure 10: classifier F1 vs training size", Run: RunFig10},
		{ID: "profile", Title: "§4.1.1: device time breakdown", Run: RunProfile},
		{ID: "dataset", Title: "classifier dataset export (CSV)", Run: RunDataset},
		{ID: "convergence", Title: "convergence curves (§3.5 motivation)", Run: RunConvergence},
		{ID: "ablations", Title: "design-choice ablations (damping, scheduling, fusion, block size)", Run: RunAblations},
		{ID: "accuracy", Title: "loopy BP approximation quality vs exact inference", Run: RunAccuracy},
		{ID: "fig11", Title: "Figure 11: Credo vs C Edge (Pascal)", Run: RunFig11},
		{ID: "fig12", Title: "Figure 12: portability to Volta", Run: RunFig12},
		{ID: "robust", Title: "convergence robustness: update-rule variants on the adversarial corpus", Run: RunRobust},
		{ID: "batch", Title: "cross-query batched inference: K solo runs vs one K-lane SoA batch", Run: RunBatchStudy},
		{ID: "serve", Title: "serving warm starts and batched throughput across evidence churn", Run: RunServeStudy},
		{ID: "delta", Title: "dynamic graphs: delta-BP incremental re-convergence vs full re-run", Run: RunDeltaStudy},
	}
}

// ByID resolves an experiment id.
func ByID(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// fmtDur renders a duration compactly for tables.
func fmtDur(d time.Duration) string {
	switch {
	case d <= 0:
		return "-"
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d.Nanoseconds())/1e6)
	case d < time.Minute:
		return fmt.Sprintf("%.2fs", d.Seconds())
	default:
		return fmt.Sprintf("%.1fm", d.Minutes())
	}
}

// fmtRatio renders a speedup ratio.
func fmtRatio(r float64) string {
	if r == 0 {
		return "-"
	}
	if r >= 100 {
		return fmt.Sprintf("%.0fx", r)
	}
	return fmt.Sprintf("%.2fx", r)
}

// geoMean returns the geometric mean of positive values (zero entries are
// skipped); 0 when none qualify.
func geoMean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// boldSubset filters Table 1 down to the figures' rendered subset.
func boldSubset(specs []GraphSpec) []GraphSpec {
	var out []GraphSpec
	for _, s := range specs {
		if s.Bold {
			out = append(out, s)
		}
	}
	return out
}

// sortedBySize orders specs by full-scale node count ascending.
func sortedBySize(specs []GraphSpec) []GraphSpec {
	out := append([]GraphSpec(nil), specs...)
	sort.Slice(out, func(i, j int) bool { return out[i].Nodes < out[j].Nodes })
	return out
}
