package bench

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"credo/internal/bif"
	"credo/internal/bp"
	"credo/internal/graph"
	"credo/internal/poolbp"
)

// sprinklerBIF is the classic four-node Pearl network, embedded so the
// experiment has a tier-independent named-network sanity case (the same
// fixture internal/bif/testdata ships for the parser tests).
const sprinklerBIF = `
network sprinkler {
  property "classic example" ;
}
variable cloudy {
  type discrete [ 2 ] { true, false };
}
variable sprinkler {
  type discrete [ 2 ] { true, false };
}
variable rain {
  type discrete [ 2 ] { true, false };
}
variable wetgrass {
  type discrete [ 2 ] { true, false };
}
probability ( cloudy ) {
  table 0.5, 0.5;
}
probability ( sprinkler | cloudy ) {
  ( true ) 0.1, 0.9;
  ( false ) 0.5, 0.5;
}
probability ( rain | cloudy ) {
  ( true ) 0.8, 0.2;
  ( false ) 0.2, 0.8;
}
probability ( wetgrass | sprinkler, rain ) {
  ( true, true ) 0.99, 0.01;
  ( true, false ) 0.90, 0.10;
  ( false, true ) 0.90, 0.10;
  ( false, false ) 0.00, 1.00;
}
`

// sprinklerMRF parses the embedded sprinkler network and doubles it into
// MRF form, as the serving layer loads it.
func sprinklerMRF() (*graph.Graph, error) {
	g, err := bif.Parse(strings.NewReader(sprinklerBIF))
	if err != nil {
		return nil, err
	}
	return g.Undirected()
}

// laneEvidenceSpread assigns lane l's evidence clamps, the spread the
// batch engine tests use: lane 0 evidence-free, odd lanes one clamp,
// lanes >= 4 two clamps — different posteriors and different convergence
// times inside one batch.
func laneEvidenceSpread(lane, numNodes, states int) [][2]int {
	if lane == 0 {
		return nil
	}
	ev := [][2]int{{(lane * 7) % numNodes, lane % states}}
	if lane >= 4 {
		second := [2]int{(lane*13 + 3) % numNodes, (lane + 1) % states}
		if second[0] != ev[0][0] {
			ev = append(ev, second)
		}
	}
	return ev
}

// batchCase measures one graph at one batch width: K queries run solo
// (clone + observe + RunNode) against the same K staged as one SoA
// batch, on both the sequential and the pool back end.
type batchCase struct {
	name    string
	k       int
	nodes   int
	edges   int
	sweeps  int // batch sweep count (slowest lane)
	bitwise bool

	soloUpdates  int64 // total belief updates across the K solo runs
	soloRandom   int64 // total random-order cache-line loads, solo
	batchRandom  int64 // same, batched (the amortized structure pass)
	soloModel    time.Duration
	batchModel   time.Duration
	soloWall     time.Duration
	batchWall    time.Duration
	poolSoloWall time.Duration
	poolWall     time.Duration
}

// runBatchCase executes the solo/batched comparison on g.
func runBatchCase(name string, g *graph.Graph, k int, cfg Config) (batchCase, error) {
	c := batchCase{name: name, k: k, nodes: g.NumNodes, edges: g.NumEdges}
	opts := cfg.Options
	opts.Probe = nil
	// The batched sweep is the synchronous node-paradigm schedule; solo
	// runs drop the work queue so both sides execute the same algorithm
	// and the lanes can be checked bitwise.
	opts.WorkQueue = false

	type soloOut struct {
		beliefs []float32
		res     bp.Result
	}
	solos := make([]soloOut, k)
	start := time.Now()
	for l := 0; l < k; l++ {
		sg := g.Clone()
		for _, e := range laneEvidenceSpread(l, g.NumNodes, g.States) {
			if err := sg.Observe(int32(e[0]), e[1]); err != nil {
				return c, err
			}
		}
		res := bp.RunNode(sg, opts)
		solos[l] = soloOut{beliefs: sg.Beliefs, res: res}
		c.soloUpdates += res.Ops.NodesProcessed
		c.soloRandom += res.Ops.RandomLoads
		c.soloModel += cfg.CPU.SequentialTime(res.Ops)
	}
	c.soloWall = time.Since(start)

	bs, err := graph.NewBatchState(g, k)
	if err != nil {
		return c, err
	}
	stage := func(bs *graph.BatchState) error {
		for l := 0; l < k; l++ {
			for _, e := range laneEvidenceSpread(l, g.NumNodes, g.States) {
				if err := bs.Observe(l, int32(e[0]), e[1]); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := stage(bs); err != nil {
		return c, err
	}
	start = time.Now()
	bres := bp.RunBatch(g, bs, opts)
	c.batchWall = time.Since(start)
	c.sweeps = bres.Iterations
	c.batchRandom = bres.Ops.RandomLoads
	c.batchModel = cfg.CPU.SequentialTime(bres.Ops)

	// Lane-vs-solo differential, inline: the speedup table is only worth
	// reporting if the batch computes the same answers.
	c.bitwise = true
	lane := make([]float32, g.NumNodes*g.States)
	for l := 0; l < k; l++ {
		bs.ExtractLane(l, lane)
		if bres.Lanes[l].Iterations != solos[l].res.Iterations {
			c.bitwise = false
		}
		for i := range lane {
			if math.Float32bits(lane[i]) != math.Float32bits(solos[l].beliefs[i]) {
				c.bitwise = false
				break
			}
		}
	}

	// Pool back end, same comparison (wall only; the deterministic table
	// is carried by the sequential engine).
	workers := cfg.PoolWorkers
	if workers <= 0 {
		workers = 4
	}
	popts := poolbp.Options{Options: opts, Workers: workers}
	start = time.Now()
	for l := 0; l < k; l++ {
		sg := g.Clone()
		for _, e := range laneEvidenceSpread(l, g.NumNodes, g.States) {
			if err := sg.Observe(int32(e[0]), e[1]); err != nil {
				return c, err
			}
		}
		poolbp.RunNode(sg, popts)
	}
	c.poolSoloWall = time.Since(start)
	pbs, err := graph.NewBatchState(g, k)
	if err != nil {
		return c, err
	}
	if err := stage(pbs); err != nil {
		return c, err
	}
	start = time.Now()
	poolbp.RunBatch(g, pbs, popts)
	c.poolWall = time.Since(start)
	return c, nil
}

// RunBatchStudy is the cross-query batching study (EXPERIMENTS.md X7):
// K concurrent queries with different evidence over one structure,
// served as K solo runs vs one K-lane SoA batch. The deterministic body
// reports per-query update counts and the random-order structure
// traffic the batch amortizes (plus the modelled per-query time); the
// wall-clock footer reports the measured per-query latency and
// updates/sec on this host.
//
// The amortization model: a solo sweep pays one random-order structure
// pass (parent gathers + matrix rows) per query, so K queries pay K
// passes. The batch pays ceil(states*K*4/64) cache lines per gather —
// one pass of K-wide lines — so the structure traffic per query falls
// roughly as min(K, 16/states) until the K-wide lane block outgrows a
// cache line. Compute (MACs) is not amortized; the win is bounded by
// the memory-bound share of the sweep.
func RunBatchStudy(w io.Writer, cfg Config) error {
	type graphCase struct {
		name string
		g    *graph.Graph
	}
	var cases []graphCase
	sprinkler, err := sprinklerMRF()
	if err != nil {
		return err
	}
	cases = append(cases, graphCase{"sprinkler", sprinkler})
	for _, abbrev := range []string{"GO", "1Mx4M"} {
		spec, ok := specByAbbrev(abbrev)
		if !ok {
			return fmt.Errorf("bench: missing spec %s", abbrev)
		}
		g, err := spec.Generate(2, cfg.Tier, cfg.Seed)
		if err != nil {
			return err
		}
		cases = append(cases, graphCase{spec.Abbrev, g})
	}

	fmt.Fprintf(w, "batch — cross-query batched inference: K solo runs vs one K-lane SoA batch (tier %s)\n", cfg.Tier.Name)
	fmt.Fprintln(w, "solo and batch run the synchronous node schedule; every lane is checked bitwise against its solo run")

	ks := []int{1, 8, 32}
	var rows []batchCase
	for _, gc := range cases {
		for _, k := range ks {
			c, err := runBatchCase(gc.name, gc.g, k, cfg)
			if err != nil {
				return err
			}
			rows = append(rows, c)
		}
	}

	fmt.Fprintf(w, "\n%-10s %4s %8s %8s %7s %12s %14s %14s %9s %8s\n",
		"graph", "K", "nodes", "edges", "sweeps", "updates/qry", "rndlines/qry", "batch rnd/qry", "amortize", "bitwise")
	for _, c := range rows {
		k64 := int64(c.k)
		amort := float64(c.soloRandom) / float64(c.batchRandom)
		fmt.Fprintf(w, "%-10s %4d %8d %8d %7d %12d %14d %14d %8.2fx %8v\n",
			c.name, c.k, c.nodes, c.edges, c.sweeps,
			c.soloUpdates/k64, c.soloRandom/k64, c.batchRandom/k64, amort, c.bitwise)
	}

	fmt.Fprintf(w, "\nmodelled per-query time (%s, deterministic):\n", cfg.CPU.Name)
	fmt.Fprintf(w, "%-10s %4s %12s %12s %9s\n", "graph", "K", "solo/qry", "batch/qry", "speedup")
	for _, c := range rows {
		fmt.Fprintf(w, "%-10s %4d %12s %12s %9s\n",
			c.name, c.k,
			fmtDur(c.soloModel/time.Duration(c.k)),
			fmtDur(c.batchModel/time.Duration(c.k)),
			fmtRatio(float64(c.soloModel)/float64(c.batchModel)))
	}

	fmt.Fprintln(w, "\nmeasured wall-clock on this host (varies run to run):")
	fmt.Fprintf(w, "%-10s %4s %12s %12s %9s %14s %12s %12s %9s\n",
		"graph", "K", "solo/qry", "batch/qry", "speedup", "batch upd/s", "pool solo", "pool batch", "speedup")
	for _, c := range rows {
		updPerSec := float64(c.soloUpdates) / c.batchWall.Seconds()
		fmt.Fprintf(w, "%-10s %4d %12s %12s %9s %14.3g %12s %12s %9s\n",
			c.name, c.k,
			fmtDur(c.soloWall/time.Duration(c.k)),
			fmtDur(c.batchWall/time.Duration(c.k)),
			fmtRatio(float64(c.soloWall)/float64(c.batchWall)),
			updPerSec,
			fmtDur(c.poolSoloWall/time.Duration(c.k)),
			fmtDur(c.poolWall/time.Duration(c.k)),
			fmtRatio(float64(c.poolSoloWall)/float64(c.poolWall)))
	}
	return nil
}
