// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation: the Table 1 benchmark suite, the
// labeled dataset behind the classifier experiments, and one runner per
// experiment (see DESIGN.md §5 for the index).
//
// Real-world graphs are replaced by parameter-matched synthetic stand-ins
// (Kronecker for the kron-g500 family, preferential attachment for the
// social and web networks) and all runs execute on a scaled tier whose
// graphs preserve each benchmark's density and degree shape at a size a CI
// machine can propagate through. Reported times are modelled: priced
// operation counts for the C and OpenMP implementations, simulated device
// time for the CUDA ones.
package bench

import (
	"fmt"
	"math"

	"credo/internal/gen"
	"credo/internal/graph"
)

// Kind is a benchmark graph topology family.
type Kind int

// The three generator families standing in for Table 1's sources.
const (
	// Synthetic is the paper's uniform-random NxM family.
	Synthetic Kind = iota
	// Kron matches the kron-g500-lognNN generators.
	Kron
	// Social matches the social/web-network graphs via preferential
	// attachment.
	Social
)

// GraphSpec describes one Table 1 benchmark graph at full scale.
type GraphSpec struct {
	Name   string
	Abbrev string
	Kind   Kind
	// Nodes and Edges are the full-scale counts from Table 1.
	Nodes int
	Edges int
	// KronScale/KronEdgeFactor parameterize the Kron kind.
	KronScale      int
	KronEdgeFactor int
	// Bold marks the rendered subset of Figures 7 and 9.
	Bold bool
}

// Table1 returns the paper's 34 benchmark graphs (Table 1).
func Table1() []GraphSpec {
	return []GraphSpec{
		{Name: "10_nodes_40_edges", Abbrev: "10x40", Kind: Synthetic, Nodes: 10, Edges: 40, Bold: true},
		{Name: "100_nodes_400_edges", Abbrev: "100x400", Kind: Synthetic, Nodes: 100, Edges: 400},
		{Name: "1000_nodes_4000_edges", Abbrev: "1k4k", Kind: Synthetic, Nodes: 1000, Edges: 4000, Bold: true},
		{Name: "10000_nodes_40000_edges", Abbrev: "10kx40k", Kind: Synthetic, Nodes: 10000, Edges: 40000},
		{Name: "hollywood-2009", Abbrev: "HO", Kind: Social, Nodes: 83832, Edges: 549038},
		{Name: "kron-g500-logn16", Abbrev: "K16", Kind: Kron, Nodes: 55321, Edges: 2456398, KronScale: 16, KronEdgeFactor: 44, Bold: true},
		{Name: "100000_nodes_400000_edges", Abbrev: "100kx400k", Kind: Synthetic, Nodes: 100000, Edges: 400000, Bold: true},
		{Name: "kron-g500-logn17", Abbrev: "K17", Kind: Kron, Nodes: 131071, Edges: 5114375, KronScale: 17, KronEdgeFactor: 39},
		{Name: "loc-gowalla", Abbrev: "GO", Kind: Social, Nodes: 196591, Edges: 1900654, Bold: true},
		{Name: "200000_nodes_800000_edges", Abbrev: "200kx800k", Kind: Synthetic, Nodes: 200000, Edges: 800000},
		{Name: "soc-google-plus", Abbrev: "GP", Kind: Social, Nodes: 211187, Edges: 1506896, Bold: true},
		{Name: "kron-g500-logn18", Abbrev: "K18", Kind: Kron, Nodes: 262144, Edges: 10583222, KronScale: 18, KronEdgeFactor: 40},
		{Name: "web-Stanford", Abbrev: "ST", Kind: Social, Nodes: 281903, Edges: 2312497, Bold: true},
		{Name: "400000_nodes_1600000_edges", Abbrev: "400kx1600k", Kind: Synthetic, Nodes: 400000, Edges: 1600000},
		{Name: "kron-g500-logn19", Abbrev: "K19", Kind: Kron, Nodes: 409175, Edges: 21781478, KronScale: 19, KronEdgeFactor: 53, Bold: true},
		{Name: "soc-twitter-follows-mun", Abbrev: "TF", Kind: Social, Nodes: 465017, Edges: 835423},
		{Name: "web-it-2004", Abbrev: "IT", Kind: Social, Nodes: 509338, Edges: 7178413, Bold: true},
		{Name: "soc-delicious", Abbrev: "DE", Kind: Social, Nodes: 536108, Edges: 1365961},
		{Name: "600000_nodes_1200000_edges", Abbrev: "600kx1200k", Kind: Synthetic, Nodes: 600000, Edges: 1200000, Bold: true},
		{Name: "kron-g500-logn20", Abbrev: "K20", Kind: Kron, Nodes: 795241, Edges: 44620272, KronScale: 20, KronEdgeFactor: 56},
		{Name: "800000_nodes_3200000_edges", Abbrev: "800kx3200k", Kind: Synthetic, Nodes: 800000, Edges: 3200000, Bold: true},
		{Name: "1000000_nodes_4000000_edges", Abbrev: "1Mx4M", Kind: Synthetic, Nodes: 1000000, Edges: 4000000},
		{Name: "com-youtube", Abbrev: "YO", Kind: Social, Nodes: 1134890, Edges: 2987624, Bold: true},
		{Name: "kron-g500-logn21", Abbrev: "K21", Kind: Kron, Nodes: 1544087, Edges: 91042010, KronScale: 21, KronEdgeFactor: 59},
		{Name: "soc-pokec-relationships", Abbrev: "PO", Kind: Social, Nodes: 1632803, Edges: 30622564, Bold: true},
		{Name: "web-wiki-ch-internal", Abbrev: "WW", Kind: Social, Nodes: 1930275, Edges: 9359108},
		{Name: "2000000_nodes_8000000_edges", Abbrev: "2Mx8M", Kind: Synthetic, Nodes: 2000000, Edges: 8000000, Bold: true},
		{Name: "wiki-Talk", Abbrev: "WT", Kind: Social, Nodes: 2394385, Edges: 5021410},
		{Name: "soc-orkut", Abbrev: "OR", Kind: Social, Nodes: 2997166, Edges: 106349209, Bold: true},
		{Name: "wikipedia-link-en", Abbrev: "WL", Kind: Social, Nodes: 3371716, Edges: 31956268},
		{Name: "soc-LiveJournal1", Abbrev: "LJ", Kind: Social, Nodes: 4846609, Edges: 68475391, Bold: true},
		{Name: "tech-p2p", Abbrev: "TP", Kind: Social, Nodes: 5792297, Edges: 8105822},
		{Name: "friendster", Abbrev: "FR", Kind: Social, Nodes: 8658744, Edges: 55170227, Bold: true},
		{Name: "soc-twitter-2010", Abbrev: "TW", Kind: Social, Nodes: 21297772, Edges: 265025809, Bold: true},
	}
}

// UseCase is one of the paper's three belief encodings (§4).
type UseCase struct {
	Name   string
	States int
}

// UseCases returns the binary, virus and image-correction encodings.
func UseCases() []UseCase {
	return []UseCase{
		{Name: "binary", States: 2},
		{Name: "virus", States: 3},
		{Name: "image", States: 32},
	}
}

// Tier bounds the scaled benchmark size. Every graph keeps its topology
// family; node and edge counts are capped (edge-heavy graphs like the
// Kronecker family hit the edge cap first).
type Tier struct {
	Name     string
	MaxNodes int
	MaxEdges int
}

// The available tiers.
var (
	// TierCI keeps every run well under a second — the default for go test.
	TierCI = Tier{Name: "ci", MaxNodes: 1_500, MaxEdges: 8_000}
	// TierSmall is credobench's default: minutes for the full set.
	TierSmall = Tier{Name: "small", MaxNodes: 15_000, MaxEdges: 80_000}
	// TierMedium stresses the engines while staying laptop-feasible.
	TierMedium = Tier{Name: "medium", MaxNodes: 150_000, MaxEdges: 800_000}
)

// TierByName resolves a tier name.
func TierByName(name string) (Tier, error) {
	switch name {
	case "", "small":
		return TierSmall, nil
	case "ci":
		return TierCI, nil
	case "medium":
		return TierMedium, nil
	}
	return Tier{}, fmt.Errorf("bench: unknown tier %q (want ci, small or medium)", name)
}

// ScaledSize returns the node and edge counts of the spec under the tier.
func (s GraphSpec) ScaledSize(t Tier) (nodes, edges int) {
	f := 1.0
	if s.Nodes > t.MaxNodes {
		f = float64(t.MaxNodes) / float64(s.Nodes)
	}
	if fe := float64(t.MaxEdges) / float64(s.Edges); s.Edges > t.MaxEdges && fe < f {
		f = fe
	}
	nodes = int(math.Max(2, math.Round(float64(s.Nodes)*f)))
	edges = int(math.Max(1, math.Round(float64(s.Edges)*f)))
	return nodes, edges
}

// ScaleFactor returns full-scale edges divided by scaled edges — the
// extrapolation ratio used to report full-scale modelled times from
// scaled-tier executions.
func (s GraphSpec) ScaleFactor(t Tier) float64 {
	_, edges := s.ScaledSize(t)
	return float64(s.Edges) / float64(edges)
}

// Generate builds the spec's graph at the tier's scale with the use case's
// belief width. The shared-matrix refinement is on, as in Credo's final
// configuration (§2.2).
func (s GraphSpec) Generate(states int, t Tier, seed int64) (*graph.Graph, error) {
	nodes, edges := s.ScaledSize(t)
	cfg := gen.Config{Seed: seed, States: states, Shared: true}
	switch s.Kind {
	case Kron:
		scale := int(math.Ceil(math.Log2(float64(nodes))))
		if scale < 4 {
			scale = 4
		}
		n := 1 << uint(scale)
		ef := edges / n
		if ef < 1 {
			ef = 1
		}
		return gen.Kronecker(scale, ef, cfg)
	case Social:
		if nodes < 2 {
			nodes = 2
		}
		return gen.PowerLaw(nodes, edges, cfg)
	default:
		return gen.Synthetic(nodes, edges, cfg)
	}
}

// FullFootprint estimates the full-scale device footprint in bytes of the
// benchmark at the given belief width — the quantity the VRAM admission
// check uses, so that TW and OR are excluded exactly as in §4.2 even when
// the executed graph is scaled down.
func (s GraphSpec) FullFootprint(states int) int64 {
	var f int64
	f += int64(s.Nodes) * int64(states) * 4 * 3 // beliefs, priors, accumulators
	f += int64(s.Edges) * int64(states) * 4     // messages
	f += int64(s.Edges) * 12                    // endpoints + adjacency
	f += int64(s.Nodes+s.Edges) * 8             // deltas + queues
	return f
}
