package bench

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"credo/internal/bif"
	"credo/internal/bp"
	"credo/internal/gen"
	"credo/internal/graph"
	"credo/internal/mtxbp"
	"credo/internal/xmlbif"
)

// RunTable1 prints the benchmark suite with full-scale and tier-scaled
// sizes (Table 1).
func RunTable1(w io.Writer, cfg Config) error {
	fmt.Fprintf(w, "Table 1: benchmark graphs (tier %s)\n", cfg.Tier.Name)
	fmt.Fprintf(w, "%-28s %-11s %5s %12s %14s %10s %12s\n",
		"name", "abbrev", "kind", "nodes", "edges", "run-nodes", "run-edges")
	kinds := map[Kind]string{Synthetic: "synth", Kron: "kron", Social: "social"}
	for _, s := range sortedBySize(Table1()) {
		n, e := s.ScaledSize(cfg.Tier)
		fmt.Fprintf(w, "%-28s %-11s %5s %12d %14d %10d %12d\n",
			s.Name, s.Abbrev, kinds[s.Kind], s.Nodes, s.Edges, n, e)
	}
	return nil
}

// RunAlgoCmp reproduces §2.1.1: the traditional level-ordered BP against
// loopy BP by edge and by node on the synthetic family, single-threaded.
// The paper measures the traditional algorithm 1032x/44x slower than
// by-edge/by-node at 10kx40k, widening with size (avg ≈1014x / ≈300x).
func RunAlgoCmp(w io.Writer, cfg Config) error {
	fmt.Fprintf(w, "§2.1.1 — traditional vs loopy BP (binary beliefs, tier %s, full-scale modelled times)\n", cfg.Tier.Name)
	fmt.Fprintf(w, "%-12s %12s %12s %12s %12s %14s %14s\n",
		"graph", "nodes", "traditional", "loopy-edge", "loopy-node", "trad/edge", "trad/node")
	var edgeRatios, nodeRatios []float64
	for _, s := range sortedBySize(Table1()) {
		if s.Kind != Synthetic {
			continue
		}
		g, err := s.Generate(2, cfg.Tier, cfg.Seed)
		if err != nil {
			return err
		}
		r := s.ScaleFactor(cfg.Tier)
		// The traditional algorithm's level determination is O(V·E) —
		// superlinear — so its full-scale cost is re-derived from the
		// full-scale sizes rather than scaled linearly.
		tradRes := bp.RunTraditional(g.Clone(), cfg.Options)
		levelLoads := 2 * int64(g.NumNodes) * int64(g.NumEdges)
		sweeps := tradRes.Ops
		sweeps.MemLoads -= levelLoads
		tradOps := scaleOps(sweeps, r)
		tradOps.MemLoads += 2 * int64(s.Nodes) * int64(s.Edges)
		trad := cfg.CPU.SequentialTime(tradOps)

		edge := cfg.CPU.SequentialTime(scaleOps(bp.RunEdge(g.Clone(), cfg.Options).Ops, r))
		node := cfg.CPU.SequentialTime(scaleOps(bp.RunNode(g.Clone(), cfg.Options).Ops, r))
		re := ratio(trad, edge)
		rn := ratio(trad, node)
		edgeRatios = append(edgeRatios, re)
		nodeRatios = append(nodeRatios, rn)
		fmt.Fprintf(w, "%-12s %12d %12s %12s %12s %14s %14s\n",
			s.Abbrev, s.Nodes, fmtDur(trad), fmtDur(edge), fmtDur(node), fmtRatio(re), fmtRatio(rn))
	}
	fmt.Fprintf(w, "geo-mean slowdown of traditional BP: %s vs by-edge, %s vs by-node\n",
		fmtRatio(geoMean(edgeRatios)), fmtRatio(geoMean(nodeRatios)))
	fmt.Fprintln(w, "(paper: 1032x/44x at 10kx40k widening to 11427x/379x at 2Mx8M; avg ≈1014x / ≈300x)")
	return nil
}

func ratio(a, b time.Duration) float64 {
	if b <= 0 {
		return 0
	}
	return a.Seconds() / b.Seconds()
}

// RunSharedMatrix reproduces §2.2: the single shared joint probability
// matrix against per-edge matrices, for C Edge, CUDA Edge and CUDA Node.
// The paper observes ≈2x for C and CUDA Edge and >25x for CUDA Node on the
// larger graphs.
func RunSharedMatrix(w io.Writer, cfg Config) error {
	fmt.Fprintf(w, "§2.2 — shared joint matrix speedup (binary beliefs, tier %s)\n", cfg.Tier.Name)
	fmt.Fprintf(w, "%-12s %10s %12s %12s %12s\n", "graph", "nodes", "C Edge", "CUDA Edge", "CUDA Node")
	var ce, cue, cun []float64
	for _, s := range sortedBySize(Table1()) {
		if s.Kind != Synthetic || s.Nodes > 800000 {
			continue
		}
		sp, err := sharedMatrixSpeedups(s, cfg)
		if err != nil {
			return err
		}
		ce = append(ce, sp[0])
		cue = append(cue, sp[1])
		cun = append(cun, sp[2])
		nodes, _ := s.ScaledSize(cfg.Tier)
		fmt.Fprintf(w, "%-12s %10d %12s %12s %12s\n",
			s.Abbrev, nodes, fmtRatio(sp[0]), fmtRatio(sp[1]), fmtRatio(sp[2]))
	}
	fmt.Fprintf(w, "geo-mean: C Edge %s, CUDA Edge %s, CUDA Node %s\n",
		fmtRatio(geoMean(ce)), fmtRatio(geoMean(cue)), fmtRatio(geoMean(cun)))
	fmt.Fprintln(w, "(paper: ≈2x for C and CUDA Edge; >25x for CUDA Node on larger graphs)")
	return nil
}

// sharedMatrixSpeedups returns the per-edge-matrices/shared time ratios
// for C Edge, CUDA Edge and CUDA Node, extrapolated to the benchmark's
// full scale so that the fixed device overheads do not mask the kernel
// effect.
func sharedMatrixSpeedups(s GraphSpec, cfg Config) ([3]float64, error) {
	nodes, edges := s.ScaledSize(cfg.Tier)
	r := s.ScaleFactor(cfg.Tier)
	base, err := gen.Synthetic(nodes, edges, gen.Config{Seed: cfg.Seed, States: 2, Shared: true})
	if err != nil {
		return [3]float64{}, err
	}
	measure := func(impl implRunner, shared bool) (time.Duration, error) {
		g := base.Clone()
		if !shared {
			// The original mode: one matrix per edge. Every edge gets an
			// identical copy so the propagation dynamics — and therefore
			// the iteration counts — match the shared run exactly; only
			// the storage and access costs differ (paper §2.2).
			mats := make([]graph.JointMatrix, g.NumEdges)
			for e := range mats {
				m := graph.NewJointMatrix(g.States, g.States)
				copy(m.Data, g.Shared.Data)
				mats[e] = m
			}
			g.Shared = nil
			g.EdgeMats = mats
		}
		return impl(g, cfg)
	}
	var out [3]float64
	for i, impl := range []implRunner{cEdgeScaledRunner(r), cudaEdgeScaledRunner(r), cudaNodeScaledRunner(r)} {
		ts, err := measure(impl, true)
		if err != nil {
			return out, err
		}
		tp, err := measure(impl, false)
		if err != nil {
			return out, err
		}
		out[i] = ratio(tp, ts)
	}
	return out, nil
}

// RunParsers reproduces §3.2.1: parse times of the same logical network in
// BIF, XML-BIF and the streaming mtxbp format, measured with real wall
// clocks (the parsers are real code, not models).
func RunParsers(w io.Writer, cfg Config) error {
	fmt.Fprintf(w, "§3.2.1 — input format comparison (wall clock)\n")
	fmt.Fprintf(w, "%-10s %10s | %12s %10s | %12s %10s | %12s %10s\n",
		"nodes", "edges", "BIF", "size", "XML-BIF", "size", "mtxbp", "size")
	sizes := []int{5, 1000, 10000, 100000}
	for _, n := range sizes {
		if n > cfg.Tier.MaxNodes*10 {
			continue
		}
		g, err := gen.DirectedTree(n, 2, gen.Config{Seed: cfg.Seed, States: 2, UniformPriors: true})
		if err != nil {
			return err
		}
		var bifBuf, xmlBuf, nodeBuf, edgeBuf bytes.Buffer
		if err := bif.Write(&bifBuf, g); err != nil {
			return err
		}
		if err := xmlbif.Write(&xmlBuf, g); err != nil {
			return err
		}
		if err := mtxbp.Write(&nodeBuf, &edgeBuf, g); err != nil {
			return err
		}
		bifSrc, xmlSrc := bifBuf.Bytes(), xmlBuf.Bytes()
		nodeSrc, edgeSrc := nodeBuf.Bytes(), edgeBuf.Bytes()

		tBIF, err := timeIt(func() error {
			_, err := bif.Parse(bytes.NewReader(bifSrc))
			return err
		})
		if err != nil {
			return err
		}
		tXML, err := timeIt(func() error {
			_, err := xmlbif.Parse(bytes.NewReader(xmlSrc))
			return err
		})
		if err != nil {
			return err
		}
		tMTX, err := timeIt(func() error {
			_, err := mtxbp.Read(bytes.NewReader(nodeSrc), bytes.NewReader(edgeSrc))
			return err
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-10d %10d | %12s %10d | %12s %10d | %12s %10d\n",
			g.NumNodes, g.NumEdges, fmtDur(tBIF), len(bifSrc), fmtDur(tXML), len(xmlSrc),
			fmtDur(tMTX), len(nodeSrc)+len(edgeSrc))
	}
	fmt.Fprintln(w, "(paper: family-out 162µs BIF / 638µs XML-BIF; 1k-node 21ms / 83ms / 2ms mtx; 100k 8.4s XML vs 0.28s mtx)")
	return nil
}

// timeIt returns the minimum wall time of five runs of f.
func timeIt(f func() error) (time.Duration, error) {
	best := time.Duration(0)
	for i := 0; i < 5; i++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		if d := time.Since(start); best == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// RunAoSSoA reproduces §3.4: cache lines touched by the array-of-structs
// versus struct-of-arrays belief layouts over a BP-like access pattern.
// The paper's cachegrind study found ≈56% fewer data cache accesses for
// AoS.
func RunAoSSoA(w io.Writer, cfg Config) error {
	fmt.Fprintf(w, "§3.4 — AoS vs SoA belief storage (cache lines touched)\n")
	fmt.Fprintf(w, "%-10s %8s %14s %14s %10s\n", "elements", "beliefs", "AoS lines", "SoA lines", "savings")
	for _, tc := range []struct{ n, states int }{
		{10, 2}, {1000, 2}, {100000, 2}, {1000, 3}, {1000, 32}, {100000, 32},
	} {
		if tc.n > cfg.Tier.MaxNodes*100 {
			continue
		}
		aos := graph.NewAoSStore(tc.n, tc.states)
		soa := graph.NewSoAStore(tc.n, tc.states)
		buf := make([]float32, tc.states)
		var aosLines, soaLines int
		// One belief sweep: every element is read, updated and written,
		// as in the combine stage.
		for i := 0; i < tc.n; i++ {
			aosLines += aos.Load(i, buf) + aos.Store(i, buf)
			soaLines += soa.Load(i, buf) + soa.Store(i, buf)
		}
		savings := 100 * (1 - float64(aosLines)/float64(soaLines))
		fmt.Fprintf(w, "%-10d %8d %14d %14d %9.1f%%\n", tc.n, tc.states, aosLines, soaLines, savings)
	}
	fmt.Fprintln(w, "(paper: AoS shows ≈56% fewer data cache reads and writes)")
	return nil
}
