package bench

import (
	"fmt"
	"io"
	"time"

	"credo/internal/bp"
	"credo/internal/enginetest"
	"credo/internal/features"
	"credo/internal/graph"
	"credo/internal/kernel"
	"credo/internal/poolbp"
)

// RunRobust compares the update-rule variants (vanilla, damped, Circular
// BP) over the adversarial hard-graph corpus: per engine × variant it
// reports how many cases converge, the summed iteration cost of the
// converged runs, and the worst L∞ distance to the variant-matched
// log-space sequential oracle. A second table shows what the
// oscillation-risk selector (features.RecommendVariant) would pick for
// each case, next to the coupling features that drive the call.
//
// The corpus cases carry their own seeds (they are pinned adversaries,
// regression-locked in internal/enginetest), so unlike the other
// experiments this report does not vary with -seed. Everything above the
// wall-clock footer is deterministic for a fixed -workers, which the
// seed-locked credobench test relies on.
func RunRobust(w io.Writer, cfg Config) error {
	workers := cfg.PoolWorkers
	if workers <= 0 {
		workers = 8
	}
	corpus := enginetest.HardCorpus()
	variants := enginetest.HardVariants()

	type engineRow struct {
		name string
		run  func(g *graph.Graph, o bp.Options) bp.Result
	}
	engines := []engineRow{
		{"bp.node", func(g *graph.Graph, o bp.Options) bp.Result { return bp.RunNode(g, o) }},
		{"pool.node", func(g *graph.Graph, o bp.Options) bp.Result {
			return poolbp.RunNode(g, poolbp.Options{Options: o, Workers: workers})
		}},
	}

	fmt.Fprintf(w, "robust — update-rule variants on the %d-case adversarial hard-graph corpus (%d workers)\n",
		len(corpus), workers)
	fmt.Fprintln(w, "every converged run is scored against the variant-matched log-space sequential oracle")

	// The matched oracle is the slow part (log-space, possibly burning the
	// full iteration cap); compute it once per case × variant and share it
	// across engines.
	type oracleKey struct {
		c string
		v kernel.Variant
	}
	oracles := make(map[oracleKey]enginetest.HardOracle, len(corpus)*len(variants))
	for _, c := range corpus {
		for _, v := range variants {
			o, err := enginetest.ComputeHardOracle(c, v)
			if err != nil {
				return err
			}
			oracles[oracleKey{c.Name, v}] = o
		}
	}

	fmt.Fprintf(w, "\n%-10s %-9s %10s %9s %12s %10s\n",
		"engine", "variant", "converged", "fraction", "iters(conv)", "max linf")
	type wallRow struct {
		engine  string
		variant kernel.Variant
		wall    time.Duration
	}
	var walls []wallRow
	for _, e := range engines {
		for _, v := range variants {
			s := enginetest.RobustStats{Variant: v}
			start := time.Now()
			for _, c := range corpus {
				r, err := enginetest.RunHardWithOracle(c, v, e.run, oracles[oracleKey{c.Name, v}])
				if err != nil {
					return err
				}
				s.Cases++
				if r.Converged {
					s.Converged++
					s.TotalIters += r.Iters
					if r.OracleConverged && r.Linf > s.MaxLinf {
						s.MaxLinf = r.Linf
					}
				}
			}
			walls = append(walls, wallRow{e.name, v, time.Since(start)})
			fmt.Fprintf(w, "%-10s %-9s %7d/%-2d %9.2f %12d %10.2e\n",
				e.name, v, s.Converged, s.Cases, s.ConvergedFraction(), s.TotalIters, s.MaxLinf)
		}
	}

	fmt.Fprintf(w, "\nper-case variant selection (oscillation-risk rule, input-only features):\n")
	fmt.Fprintf(w, "%-22s %9s %7s %6s  %-9s %s\n",
		"case", "strength", "repel", "skew", "pick", "pinned outcome")
	for _, c := range corpus {
		g := oracles[oracleKey{c.Name, kernel.VariantVanilla}].G
		cs := g.CouplingStats()
		pick := features.RecommendVariant(g)
		outcome := "converges"
		if !c.Expect[pick] {
			outcome = "DIVERGES (selector miss)"
		}
		fmt.Fprintf(w, "%-22s %9.2f %7.2f %6.2f  %-9s %s\n",
			c.Name, cs.MeanStrength, cs.RepulsiveFraction, 1-g.Stats().Skew(), pick, outcome)
	}

	fmt.Fprintln(w, "\nwall-clock per engine × variant (varies run to run):")
	for _, r := range walls {
		fmt.Fprintf(w, "  %-10s %-9s %v\n", r.engine, r.variant, r.wall.Round(time.Millisecond))
	}
	return nil
}
