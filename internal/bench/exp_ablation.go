package bench

import (
	"fmt"
	"io"

	"credo/internal/bp"
	"credo/internal/cudabp"
	"credo/internal/gpusim"
)

// RunAblations studies the design choices DESIGN.md calls out, beyond the
// paper's own figures: belief damping, update scheduling (full sweeps vs
// the §3.5 frontier queues vs residual ordering), Gunrock-style kernel
// fusion, and the CUDA block size the paper fixes at 1024.
func RunAblations(w io.Writer, cfg Config) error {
	spec, ok := specByAbbrev("100kx400k")
	if !ok {
		return fmt.Errorf("bench: missing spec")
	}
	g, err := spec.Generate(2, cfg.Tier, cfg.Seed)
	if err != nil {
		return err
	}

	// Damping: iteration cost of stability.
	fmt.Fprintf(w, "Ablation: belief damping (by-node, %s)\n", spec.Abbrev)
	fmt.Fprintf(w, "%-10s %12s %10s\n", "damping", "iterations", "converged")
	for _, d := range []float32{0, 0.25, 0.5, 0.75} {
		res := bp.RunNode(g.Clone(), bp.Options{Damping: d})
		fmt.Fprintf(w, "%-10.2f %12d %10v\n", d, res.Iterations, res.Converged)
	}

	// Scheduling: applied node updates under each discipline, with
	// localized evidence.
	ge := g.Clone()
	_ = ge.Observe(0, 1)
	fmt.Fprintf(w, "\nAblation: update scheduling (%s with one observed node)\n", spec.Abbrev)
	fmt.Fprintf(w, "%-18s %14s %12s\n", "discipline", "node updates", "iterations")
	for _, tc := range []struct {
		name string
		run  func() bp.Result
	}{
		{"full sweeps", func() bp.Result { return bp.RunNode(ge.Clone(), bp.Options{}) }},
		{"frontier queues", func() bp.Result { return bp.RunNode(ge.Clone(), bp.Options{WorkQueue: true}) }},
		{"residual order", func() bp.Result { return bp.RunResidual(ge.Clone(), bp.Options{}) }},
	} {
		res := tc.run()
		fmt.Fprintf(w, "%-18s %14d %12d\n", tc.name, res.Ops.NodesProcessed, res.Iterations)
	}

	// Kernel fusion: launch overhead saved per graph size.
	fmt.Fprintf(w, "\nAblation: kernel fusion (CUDA Edge)\n")
	fmt.Fprintf(w, "%-12s %14s %14s %10s\n", "graph", "separate", "fused", "speedup")
	for _, abbrev := range []string{"10x40", "1k4k", "100kx400k"} {
		sp, okSpec := specByAbbrev(abbrev)
		if !okSpec {
			continue
		}
		gg, err := sp.Generate(2, cfg.Tier, cfg.Seed)
		if err != nil {
			return err
		}
		devA := gpusim.NewDevice(cfg.GPU)
		if _, err := cudabp.RunEdge(gg.Clone(), devA, cudabp.Options{Options: cfg.Options}); err != nil {
			return err
		}
		devB := gpusim.NewDevice(cfg.GPU)
		if _, err := cudabp.RunEdge(gg.Clone(), devB, cudabp.Options{Options: cfg.Options, FuseKernels: true}); err != nil {
			return err
		}
		// Compare kernel-side time only (init is identical and dominates
		// at this scale).
		ta := devA.Stats().Total() - devA.Stats().InitTime
		tb := devB.Stats().Total() - devB.Stats().InitTime
		fmt.Fprintf(w, "%-12s %13.3fms %13.3fms %10s\n", abbrev, 1e3*ta, 1e3*tb, fmtRatio(ta/tb))
	}

	// Block size: the paper's fixed 1024 against smaller blocks.
	fmt.Fprintf(w, "\nAblation: CUDA block size (edge paradigm, %s, kernel time)\n", spec.Abbrev)
	fmt.Fprintf(w, "%-10s %14s\n", "blockDim", "kernel time")
	for _, dim := range []int{128, 256, 512, 1024} {
		dev := gpusim.NewDevice(cfg.GPU)
		if _, err := cudabp.RunEdge(g.Clone(), dev, cudabp.Options{Options: cfg.Options, BlockDim: dim}); err != nil {
			return err
		}
		fmt.Fprintf(w, "%-10d %13.3fms\n", dim, 1e3*(dev.Stats().Total()-dev.Stats().InitTime))
	}
	fmt.Fprintln(w, "(the paper uses 1024 threads per block for all benchmarks)")
	return nil
}
