package bench

import (
	"fmt"
	"io"

	"credo/internal/core"
	"credo/internal/features"
)

// RunDataset prints the full classifier dataset as CSV: one row per
// benchmark variant with the §3.7 features, the four modelled times, the
// winning implementation and the Node/Edge label. It is the raw material
// behind Figures 4-6 and 10-12, exported for external analysis.
func RunDataset(w io.Writer, cfg Config) error {
	ds, err := BuildDataset(Table1(), UseCases(), cfg)
	if err != nil {
		return err
	}
	fmt.Fprint(w, "graph,usecase,nodes,edges")
	for _, n := range features.Names() {
		fmt.Fprintf(w, ",%s", n)
	}
	fmt.Fprintln(w, ",c_edge_s,c_node_s,cuda_edge_s,cuda_node_s,cuda_excluded,best,label")
	for _, m := range ds.Measurements {
		fmt.Fprintf(w, "%s,%s,%d,%d", m.Spec.Abbrev, m.Case.Name, m.Spec.Nodes, m.Spec.Edges)
		for _, f := range m.Feat {
			fmt.Fprintf(w, ",%.6g", f)
		}
		for impl := core.Implementation(0); impl < NumImpls; impl++ {
			if m.Times[impl].OK {
				fmt.Fprintf(w, ",%.6g", m.Times[impl].Time.Seconds())
			} else {
				fmt.Fprint(w, ",")
			}
		}
		fmt.Fprintf(w, ",%v,%s,%s\n", m.CUDAExcluded, m.Best, m.Label)
	}
	return nil
}
