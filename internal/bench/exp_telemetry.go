package bench

import (
	"fmt"
	"io"

	"credo/internal/bp"
	"credo/internal/cudabp"
	"credo/internal/gpusim"
	"credo/internal/ompbp"
	"credo/internal/poolbp"
	"credo/internal/relaxbp"
	"credo/internal/telemetry"
)

// RunTelemetry exercises the probe layer end-to-end: every engine runs
// the same representative loopy graph with a shared ring-buffer recorder
// attached, the per-engine event streams are summarized in a table, and
// the recorded residual trajectories are rendered as the convergence
// sparkline report. Any probe already in cfg.Options (credobench's own
// -trace-out / -http sinks) keeps receiving events alongside the
// recorder. Seeded generation makes the whole event stream reproducible:
// two invocations with the same -tier and -seed record identical
// iteration counts and update totals for the deterministic engines.
func RunTelemetry(w io.Writer, cfg Config) error {
	workers := cfg.PoolWorkers
	if workers <= 0 {
		workers = 8
	}
	specs := boldSubset(sortedBySize(Table1()))
	spec := specs[len(specs)/2] // mid-size: every trajectory stays readable
	g, err := spec.Generate(2, cfg.Tier, cfg.Seed)
	if err != nil {
		return err
	}

	rec := telemetry.NewRecorder(0)
	opts := cfg.Options
	opts.WorkQueue = true
	opts.Probe = telemetry.Multi(rec, cfg.Options.Probe)

	fmt.Fprintf(w, "telemetry — probe layer end-to-end on %s (%d nodes, %d edges; tier %s, %d workers, seed %d)\n",
		spec.Abbrev, g.NumNodes, g.NumEdges, cfg.Tier.Name, workers, cfg.Seed)

	type run struct {
		engine string
		res    bp.Result
	}
	runs := []run{
		{"bp.node", bp.RunNode(g.Clone(), opts)},
		{"bp.edge", bp.RunEdge(g.Clone(), opts)},
		{"bp.residual", bp.RunResidual(g.Clone(), opts)},
		{"pool.node", poolbp.RunNode(g.Clone(), poolbp.Options{Options: opts, Workers: workers})},
		{"relax", relaxbp.Run(g.Clone(), relaxbp.Options{Options: opts, Workers: workers, Seed: cfg.Seed})},
		{"omp.node", ompbp.RunNode(g.Clone(), ompbp.Options{Options: opts, Threads: workers})},
	}
	dev := gpusim.NewDevice(cfg.GPU)
	cres, err := cudabp.RunEdge(g.Clone(), dev, cudabp.Options{Options: opts})
	if err != nil {
		return err
	}
	runs = append(runs, run{"cuda.edge", cres.Result})

	events := rec.Events()
	perEngine := make(map[string]int, len(runs))
	for _, e := range events {
		perEngine[e.Engine]++
	}

	fmt.Fprintf(w, "%-12s %6s %10s %12s %12s %9s %9s %8s\n",
		"engine", "iters", "converged", "updates", "messages", "stale", "wasted", "events")
	for _, r := range runs {
		fmt.Fprintf(w, "%-12s %6d %10v %12d %12d %9d %9d %8d\n",
			r.engine, r.res.Iterations, r.res.Converged,
			r.res.Ops.NodesProcessed, r.res.Ops.EdgesProcessed,
			r.res.Ops.StaleDrops, r.res.Ops.WastedUpdates, perEngine[r.engine])
	}
	fmt.Fprintf(w, "recorded %d events (%d overwritten by the ring)\n", len(events), rec.Dropped())
	fmt.Fprintln(w)
	telemetry.WriteConvergenceReport(w, events)
	fmt.Fprintln(w, "(each engine frames its run with run_start/run_end and emits one iteration event per sweep — residual and relaxed engines per sweep-equivalent batch of node updates — so trace volume is O(iterations), never O(messages))")
	return nil
}
