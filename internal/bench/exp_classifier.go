package bench

import (
	"fmt"
	"io"
	"sort"

	"credo/internal/features"
	"credo/internal/ml"
	"credo/internal/viz"
)

// trainForest fits the paper's tuned random forest (max depth 6, 14
// estimators) on the dataset.
func trainForest(ds *Dataset, seed int64) (*ml.RandomForest, error) {
	forest := &ml.RandomForest{Trees: 14, MaxDepth: 6, Seed: seed}
	if err := forest.Fit(ds.X, ds.Y); err != nil {
		return nil, err
	}
	return forest, nil
}

// featureAndLabelMatrix appends the label as a sixth column for the
// covariance analysis of Figure 4.
func featureAndLabelMatrix(ds *Dataset) [][]float64 {
	out := make([][]float64, len(ds.X))
	for i, row := range ds.X {
		out[i] = append(append([]float64(nil), row...), float64(ds.Y[i]))
	}
	return out
}

// RunFig4 reproduces Figure 4: the covariance (as Pearson correlation)
// among the five features and the label.
func RunFig4(w io.Writer, cfg Config) error {
	ds, err := BuildDataset(Table1(), UseCases(), cfg)
	if err != nil {
		return err
	}
	names := append(features.Names(), "label")
	corr, err := ml.CorrelationMatrix(featureAndLabelMatrix(ds))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 4 — feature/label correlations (%d samples, tier %s)\n", len(ds.X), cfg.Tier.Name)
	fmt.Fprintf(w, "%-18s", "")
	for _, n := range names {
		fmt.Fprintf(w, " %9.9s", n)
	}
	fmt.Fprintln(w)
	for i, n := range names {
		fmt.Fprintf(w, "%-18s", n)
		for j := range names {
			fmt.Fprintf(w, " %9.2f", corr[i][j])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "(paper: skew is the only feature with notable interrelation; dropping it still hurts)")

	// The paper's PCA aside: preprocessing with PCA worsens the F1.
	pca, err := ml.FitPCA(ds.X)
	if err != nil {
		return err
	}
	rawF1, err := forestCV(ds.X, ds.Y, cfg.Seed)
	if err != nil {
		return err
	}
	pcaF1, err := forestCV(pca.TransformAll(ds.X, 3), ds.Y, cfg.Seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "random-forest 3-fold F1: raw features %.1f%%, PCA(3) %.1f%% (paper: PCA worsens the classifiers)\n",
		100*rawF1, 100*pcaF1)
	return nil
}

func forestCV(X [][]float64, y []int, seed int64) (float64, error) {
	scores, err := ml.KFold(func() ml.Classifier {
		return &ml.RandomForest{Trees: 14, MaxDepth: 6, Seed: seed}
	}, X, y, 3, seed)
	if err != nil {
		return 0, err
	}
	mean, _ := ml.MeanStd(scores)
	return mean, nil
}

// RunFig5 reproduces Figure 5: the random forest's per-feature percent
// contributions.
func RunFig5(w io.Writer, cfg Config) error {
	ds, err := BuildDataset(Table1(), UseCases(), cfg)
	if err != nil {
		return err
	}
	forest, err := trainForest(ds, cfg.Seed)
	if err != nil {
		return err
	}
	imp := forest.Importance()
	type fi struct {
		name string
		v    float64
	}
	rows := make([]fi, len(imp))
	for i, v := range imp {
		rows[i] = fi{features.Names()[i], v}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].v > rows[j].v })
	fmt.Fprintf(w, "Figure 5 — random-forest feature contributions (tier %s)\n", cfg.Tier.Name)
	var bars []viz.Bar
	for _, r := range rows {
		bars = append(bars, viz.Bar{Label: r.name, Value: 100 * r.v})
	}
	viz.BarChart(w, "", "%", bars)
	fmt.Fprintln(w, "(paper: node count and nodes/edges ratio dominate; every feature contributes)")
	return nil
}

// RunFig6 reproduces Figure 6: the tuned depth-2 decision tree, its
// structure and its F1 under the paper's 60-40 split.
func RunFig6(w io.Writer, cfg Config) error {
	ds, err := BuildDataset(Table1(), UseCases(), cfg)
	if err != nil {
		return err
	}
	trX, trY, teX, teY, err := ml.StratifiedSplit(ds.X, ds.Y, 0.6, cfg.Seed)
	if err != nil {
		return err
	}
	tree := &ml.DecisionTree{MaxDepth: 2, Seed: cfg.Seed}
	if err := tree.Fit(trX, trY); err != nil {
		return err
	}
	pred := make([]int, len(teX))
	for i, x := range teX {
		pred[i] = tree.Predict(x)
	}
	fmt.Fprintf(w, "Figure 6 — depth-2 decision tree (tier %s)\n", cfg.Tier.Name)
	fmt.Fprint(w, tree.Dump(features.Names(), features.LabelNames()))
	fmt.Fprintf(w, "test F1 = %.1f%% on a 60-40 split (paper: 89.5%% for the depth-2 tree)\n",
		100*ml.MacroF1(teY, pred))
	return nil
}

// classifierZoo returns the Figure 10 classifier families.
func classifierZoo(seed int64) []struct {
	Name      string
	Construct func() ml.Classifier
} {
	return []struct {
		Name      string
		Construct func() ml.Classifier
	}{
		{"decision tree", func() ml.Classifier { return &ml.DecisionTree{MaxDepth: 2, Seed: seed} }},
		{"random forest", func() ml.Classifier { return &ml.RandomForest{Trees: 14, MaxDepth: 6, Seed: seed} }},
		{"SVM (linear)", func() ml.Classifier { return &ml.LinearSVM{Seed: seed} }},
		{"gaussian process", func() ml.Classifier { return &ml.KernelClassifier{} }},
		{"naive bayes", func() ml.Classifier { return &ml.GaussianNB{} }},
		{"k-nearest nbrs", func() ml.Classifier { return &ml.KNN{} }},
		{"gradient boosting", func() ml.Classifier { return &ml.GradientBoosting{} }},
		{"MLP", func() ml.Classifier { return &ml.MLP{Seed: seed} }},
	}
}

// RunFig10 reproduces Figure 10: F1 of the classifier families as the
// training-set size grows, with 3-fold cross-validation spread.
func RunFig10(w io.Writer, cfg Config) error {
	ds, err := BuildDataset(Table1(), UseCases(), cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 10 — classifier F1 vs training-set size (%d labeled samples, tier %s)\n",
		len(ds.X), cfg.Tier.Name)

	sizes := []int{20, 40, 60, 80, len(ds.X)}
	fmt.Fprintf(w, "%-18s", "classifier")
	for _, n := range sizes {
		if n > len(ds.X) {
			continue
		}
		fmt.Fprintf(w, " %14s", fmt.Sprintf("n=%d", n))
	}
	fmt.Fprintln(w, "   (mean ± std of 3-fold F1)")

	for _, c := range classifierZoo(cfg.Seed) {
		fmt.Fprintf(w, "%-18s", c.Name)
		for _, n := range sizes {
			if n > len(ds.X) {
				continue
			}
			subX, subY := subsample(ds.X, ds.Y, n, cfg.Seed)
			scores, err := ml.KFold(c.Construct, subX, subY, 3, cfg.Seed)
			if err != nil {
				fmt.Fprintf(w, " %14s", "err")
				continue
			}
			mean, std := ml.MeanStd(scores)
			fmt.Fprintf(w, " %8.1f%%±%4.1f", 100*mean, 100*std)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "(paper: tree-based classifiers reach >=80% F1 from ~40 samples; RF peaks at 94.7%, DT 89.5%)")

	// Headline numbers at the paper's 60-40 split.
	trX, trY, teX, teY, err := ml.StratifiedSplit(ds.X, ds.Y, 0.6, cfg.Seed)
	if err != nil {
		return err
	}
	rfF1, err := ml.EvaluateF1(func() ml.Classifier {
		return &ml.RandomForest{Trees: 14, MaxDepth: 6, Seed: cfg.Seed}
	}, trX, trY, teX, teY)
	if err != nil {
		return err
	}
	dtF1, err := ml.EvaluateF1(func() ml.Classifier {
		return &ml.DecisionTree{MaxDepth: 2, Seed: cfg.Seed}
	}, trX, trY, teX, teY)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "60-40 split: random forest F1 %.1f%% (paper 94.7%%), depth-2 tree %.1f%% (paper 89.5%%)\n",
		100*rfF1, 100*dtF1)
	return nil
}

// subsample draws a balanced pseudo-random subset of size n.
func subsample(X [][]float64, y []int, n int, seed int64) ([][]float64, []int) {
	if n >= len(X) {
		return X, y
	}
	trX, trY, _, _, err := ml.StratifiedSplit(X, y, float64(n)/float64(len(X)), seed)
	if err != nil || len(trX) == 0 {
		return X, y
	}
	return trX, trY
}
