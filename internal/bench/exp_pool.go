package bench

import (
	"fmt"
	"io"

	"credo/internal/bp"
	"credo/internal/perfmodel"
)

// RunPool revisits §2.4 with the persistent worker-pool engine: where the
// fork-join OpenMP port loses to sequential C on every graph (the paper's
// 131-of-132 slowdown), the pool's long-lived workers, sharded queues and
// batched convergence checks divide the sweep across the physical cores.
// The table prices all engines at the graph's executed size (ratios are
// scale-free): the sequential C Edge baseline, the fork-join port at the
// pool's team size, and both pool paradigms.
func RunPool(w io.Writer, cfg Config) error {
	workers := cfg.PoolWorkers
	if workers <= 0 {
		workers = 8
	}
	fmt.Fprintf(w, "pool — persistent worker pool vs fork-join (tier %s, %d workers, binary beliefs)\n",
		cfg.Tier.Name, workers)
	fmt.Fprintf(w, "%-12s %12s %12s %12s %12s %10s %10s\n",
		"graph", "sequential", "fork-join", "pool node", "pool edge", "vs seq", "vs omp")

	var vsSeq, vsOMP []float64
	for _, s := range boldSubset(sortedBySize(Table1())) {
		g, err := s.Generate(2, cfg.Tier, cfg.Seed)
		if err != nil {
			return err
		}
		seqRes := bp.RunEdge(g.Clone(), cfg.Options)
		seq := cfg.CPU.SequentialTime(seqRes.Ops)
		omp := cfg.CPU.ParallelTime(seqRes.Ops, perfmodel.ParallelOptions{Threads: workers})

		poolNode, err := poolNodeRunner(g.Clone(), cfg)
		if err != nil {
			return err
		}
		poolEdge, err := poolEdgeRunner(g.Clone(), cfg)
		if err != nil {
			return err
		}
		best := poolEdge
		if poolNode < best {
			best = poolNode
		}

		sSeq := ratio(seq, best)
		sOMP := ratio(omp, best)
		vsSeq = append(vsSeq, sSeq)
		vsOMP = append(vsOMP, sOMP)
		fmt.Fprintf(w, "%-12s %12s %12s %12s %12s %10s %10s\n",
			s.Abbrev, fmtDur(seq), fmtDur(omp), fmtDur(poolNode), fmtDur(poolEdge),
			fmtRatio(sSeq), fmtRatio(sOMP))
	}
	fmt.Fprintf(w, "geo-mean pool speedup: %s vs sequential, %s vs the fork-join port at %d workers\n",
		fmtRatio(geoMean(vsSeq)), fmtRatio(geoMean(vsOMP)), workers)
	fmt.Fprintln(w, "(paper §2.4: the fork-join port was 4.03x SLOWER than sequential at 8 threads; the pool's persistent workers recover the parallelism)")
	return nil
}
