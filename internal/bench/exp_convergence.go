package bench

import (
	"fmt"
	"io"

	"credo/internal/bp"
	"credo/internal/viz"
)

// RunConvergence renders convergence curves — the global belief delta per
// iteration — for the sweep engines, damped BP and the work-queue runs on
// one mid-size benchmark. It substantiates the paper's §3.5 observation
// that "most nodes converge quickly after a few iterations and that graph
// convergence becomes dependent on a few nodes": the delta collapses by
// orders of magnitude in the first iterations, then decays along a long
// tail.
func RunConvergence(w io.Writer, cfg Config) error {
	spec, ok := specByAbbrev("100kx400k")
	if !ok {
		return fmt.Errorf("bench: missing spec")
	}
	g, err := spec.Generate(2, cfg.Tier, cfg.Seed)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "Convergence curves on %s (tier %s, binary beliefs)\n\n", spec.Abbrev, cfg.Tier.Name)
	runs := []struct {
		name string
		opts bp.Options
		run  func(bp.Options) bp.Result
	}{
		{"by-node sweep", bp.Options{RecordDeltas: true}, func(o bp.Options) bp.Result { return bp.RunNode(g.Clone(), o) }},
		{"by-edge sweep", bp.Options{RecordDeltas: true}, func(o bp.Options) bp.Result { return bp.RunEdge(g.Clone(), o) }},
		{"by-node + queue", bp.Options{RecordDeltas: true, WorkQueue: true}, func(o bp.Options) bp.Result { return bp.RunNode(g.Clone(), o) }},
		{"by-node damped 0.5", bp.Options{RecordDeltas: true, Damping: 0.5}, func(o bp.Options) bp.Result { return bp.RunNode(g.Clone(), o) }},
	}
	for _, r := range runs {
		res := r.run(r.opts)
		bars := make([]viz.Bar, 0, len(res.Deltas))
		for i, d := range res.Deltas {
			// Sample long runs down to at most 20 rows.
			if len(res.Deltas) > 20 && i%((len(res.Deltas)+19)/20) != 0 && i != len(res.Deltas)-1 {
				continue
			}
			bars = append(bars, viz.Bar{Label: fmt.Sprintf("iter %d", i+1), Value: float64(d)})
		}
		viz.LogBarChart(w, fmt.Sprintf("%s (converged=%v in %d iterations)", r.name, res.Converged, res.Iterations), "", bars)
		fmt.Fprintln(w)
	}
	return nil
}
