package bench

import (
	"fmt"
	"io"

	"credo/internal/bp"
	"credo/internal/perfmodel"
	"credo/internal/poolbp"
	"credo/internal/relaxbp"
)

// RunRelax compares the relaxed-priority residual engine against the
// synchronous sweep engines on the loopy benchmark suite. The scheduling
// literature's claim (Van der Merwe et al.; Aksenov et al.) is that
// residual order needs far fewer message updates to converge than
// synchronous sweeps, and that a relaxed MultiQueue keeps most of that
// saving while scaling; the table shows both sides of the trade — the
// update counts (sweeps, work-queue sweeps, relaxed residual, plus the
// stale and wasted queue traffic relaxation costs) and the modelled
// times of the pool and relax engines at the same team size.
func RunRelax(w io.Writer, cfg Config) error {
	workers := cfg.PoolWorkers
	if workers <= 0 {
		workers = 8
	}
	fmt.Fprintf(w, "relax — relaxed-priority residual scheduling vs synchronous sweeps (tier %s, %d workers, binary beliefs)\n",
		cfg.Tier.Name, workers)
	fmt.Fprintf(w, "%-12s %10s %10s %10s %9s %9s %9s %12s %12s %9s\n",
		"graph", "sweep upd", "queue upd", "relax upd", "upd ratio", "stale", "wasted", "pool time", "relax time", "speedup")

	plain := cfg.Options
	plain.WorkQueue = false
	queued := cfg.Options
	queued.WorkQueue = true

	var ratios, speedups []float64
	for _, s := range boldSubset(sortedBySize(Table1())) {
		g, err := s.Generate(2, cfg.Tier, cfg.Seed)
		if err != nil {
			return err
		}
		sweep := bp.RunNode(g.Clone(), plain)
		pool := poolbp.RunNode(g.Clone(), poolbp.Options{Options: queued, Workers: workers})
		relax := relaxbp.Run(g.Clone(), relaxbp.Options{Options: queued, Workers: workers, Seed: cfg.Seed})

		poolTime := cfg.CPU.PoolTime(pool.Ops, perfmodel.PoolOptions{Workers: workers})
		relaxTime := cfg.CPU.RelaxTime(relax.Ops, perfmodel.RelaxOptions{Workers: workers})

		updRatio := ratio64(sweep.Ops.NodesProcessed, relax.Ops.NodesProcessed)
		sp := ratio(poolTime, relaxTime)
		ratios = append(ratios, updRatio)
		speedups = append(speedups, sp)
		fmt.Fprintf(w, "%-12s %10d %10d %10d %9s %9d %9d %12s %12s %9s\n",
			s.Abbrev, sweep.Ops.NodesProcessed, pool.Ops.NodesProcessed, relax.Ops.NodesProcessed,
			fmtRatio(updRatio), relax.Ops.StaleDrops, relax.Ops.WastedUpdates,
			fmtDur(poolTime), fmtDur(relaxTime), fmtRatio(sp))
	}
	fmt.Fprintf(w, "geo-mean: %s fewer belief updates than synchronous sweeps, %s modelled speedup over the pool engine at %d workers\n",
		fmtRatio(geoMean(ratios)), fmtRatio(geoMean(speedups)), workers)
	fmt.Fprintln(w, "(Van der Merwe et al. / Aksenov et al.: residual order converges in far fewer updates; the stale and wasted columns are what the relaxed queue pays for scaling past the exact-priority bottleneck)")
	return nil
}

// ratio64 returns a/b for positive counts, 0 otherwise.
func ratio64(a, b int64) float64 {
	if a <= 0 || b <= 0 {
		return 0
	}
	return float64(a) / float64(b)
}
