package bench

import (
	"fmt"
	"io"
	"sort"

	"credo/internal/core"
	"credo/internal/gpusim"
	"credo/internal/graph"
	"credo/internal/ml"
	"credo/internal/perfmodel"
	"credo/internal/viz"
)

// RunFig7 reproduces Figure 7: modelled full-scale runtimes of the four
// implementations on the bold subset (binary beliefs) plus the AVG row
// over every benchmark and use case.
func RunFig7(w io.Writer, cfg Config) error {
	fmt.Fprintf(w, "Figure 7 — runtimes of the C and CUDA implementations (tier %s)\n", cfg.Tier.Name)
	fmt.Fprintf(w, "%-12s %12s %12s %12s %12s %12s %12s\n",
		"graph", "nodes", "C Edge", "C Node", "CUDA Edge", "CUDA Node", "best")
	binary := UseCases()[0]
	for _, s := range sortedBySize(boldSubset(Table1())) {
		m, err := MeasureVariant(s, binary, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-12s %12d %12s %12s %12s %12s %12s\n",
			s.Abbrev, s.Nodes,
			fmtDur(m.Times[core.CEdge].Time), fmtDur(m.Times[core.CNode].Time),
			fmtDur(m.Times[core.CUDAEdge].Time), fmtDur(m.Times[core.CUDANode].Time),
			m.Best.String())
	}

	// AVG row across the full suite and use cases (geo-mean).
	ds, err := BuildDataset(Table1(), UseCases(), cfg)
	if err != nil {
		return err
	}
	var times [NumImpls][]float64
	for _, m := range ds.Measurements {
		for impl := 0; impl < NumImpls; impl++ {
			if m.Times[impl].OK {
				times[impl] = append(times[impl], m.Times[impl].Time.Seconds())
			}
		}
	}
	fmt.Fprintf(w, "%-12s %12s", "AVG", "")
	for impl := 0; impl < NumImpls; impl++ {
		fmt.Fprintf(w, " %11.3fs", geoMean(times[impl]))
	}
	fmt.Fprintln(w)

	// The figure itself: log-scale runtime bars per benchmark.
	var groups []viz.Group
	for _, s := range sortedBySize(boldSubset(Table1())) {
		m, err := MeasureVariant(s, binary, cfg)
		if err != nil {
			return err
		}
		groups = append(groups, viz.Group{Label: s.Abbrev, Values: []float64{
			m.Times[core.CEdge].Time.Seconds(),
			m.Times[core.CNode].Time.Seconds(),
			m.Times[core.CUDAEdge].Time.Seconds(),
			m.Times[core.CUDANode].Time.Seconds(),
		}})
	}
	fmt.Fprintln(w)
	viz.GroupedLogBars(w, "Figure 7 (rendered): modelled runtimes, binary beliefs", "s",
		[]string{"C Edge", "C Node", "CUDA Edge", "CUDA Node"}, groups)
	fmt.Fprintln(w, "(paper: CUDA wins at >=100k nodes; CUDA Node up to 120x vs C Node, CUDA Edge ~3.4x vs C Edge)")
	return nil
}

// RunFig8 reproduces Figure 8: the distribution of per-paradigm CUDA
// speedups (CUDA vs the matching C implementation) by belief count.
func RunFig8(w io.Writer, cfg Config) error {
	fmt.Fprintf(w, "Figure 8 — speedup distribution by belief count (tier %s)\n", cfg.Tier.Name)
	ds, err := BuildDataset(Table1(), UseCases(), cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-8s %8s | %10s %10s %10s | %10s %10s %10s\n",
		"beliefs", "samples", "node p25", "node med", "node p75", "edge p25", "edge med", "edge p75")
	for _, uc := range UseCases() {
		var nodeSp, edgeSp []float64
		for _, m := range ds.Measurements {
			if m.Case.States != uc.States || m.CUDAExcluded {
				continue
			}
			if sp := m.Speedup(core.CUDANode, core.CNode); sp > 0 {
				nodeSp = append(nodeSp, sp)
			}
			if sp := m.Speedup(core.CUDAEdge, core.CEdge); sp > 0 {
				edgeSp = append(edgeSp, sp)
			}
		}
		np := percentiles(nodeSp)
		ep := percentiles(edgeSp)
		fmt.Fprintf(w, "%-8d %8d | %10s %10s %10s | %10s %10s %10s\n",
			uc.States, len(nodeSp),
			fmtRatio(np[0]), fmtRatio(np[1]), fmtRatio(np[2]),
			fmtRatio(ep[0]), fmtRatio(ep[1]), fmtRatio(ep[2]))
	}
	// The figure: median speedups per belief width.
	var nodeBars, edgeBars []viz.Bar
	for _, uc := range UseCases() {
		var nodeSp, edgeSp []float64
		for _, m := range ds.Measurements {
			if m.Case.States != uc.States || m.CUDAExcluded {
				continue
			}
			if sp := m.Speedup(core.CUDANode, core.CNode); sp > 0 {
				nodeSp = append(nodeSp, sp)
			}
			if sp := m.Speedup(core.CUDAEdge, core.CEdge); sp > 0 {
				edgeSp = append(edgeSp, sp)
			}
		}
		label := fmt.Sprintf("%d beliefs", uc.States)
		nodeBars = append(nodeBars, viz.Bar{Label: label, Value: percentiles(nodeSp)[1]})
		edgeBars = append(edgeBars, viz.Bar{Label: label, Value: percentiles(edgeSp)[1]})
	}
	fmt.Fprintln(w)
	viz.BarChart(w, "Figure 8 (rendered): median CUDA Node speedup vs C Node", "x", nodeBars)
	fmt.Fprintln(w)
	viz.BarChart(w, "Figure 8 (rendered): median CUDA Edge speedup vs C Edge", "x", edgeBars)
	fmt.Fprintln(w, "(paper: Node speedup peaks near 3 beliefs then declines to ~29x at 32; Edge rises steadily to ~10x)")
	return nil
}

// percentiles returns the 25th, 50th and 75th percentiles.
func percentiles(xs []float64) [3]float64 {
	if len(xs) == 0 {
		return [3]float64{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	pick := func(q float64) float64 {
		i := int(q * float64(len(s)-1))
		return s[i]
	}
	return [3]float64{pick(0.25), pick(0.5), pick(0.75)}
}

// RunFig9 reproduces Figure 9: the speedup the work queues deliver per
// implementation at 32 beliefs, excluding the graphs that exceed VRAM.
func RunFig9(w io.Writer, cfg Config) error {
	fmt.Fprintf(w, "Figure 9 — work-queue speedups at 32 beliefs (tier %s)\n", cfg.Tier.Name)
	image := UseCases()[2]
	on := cfg
	on.Options.WorkQueue = true
	off := cfg
	off.Options.WorkQueue = false

	fmt.Fprintf(w, "%-12s %10s %10s %10s %10s\n", "graph", "C Edge", "C Node", "CUDA Edge", "CUDA Node")
	var agg [NumImpls][]float64
	for _, s := range sortedBySize(boldSubset(Table1())) {
		if s.FullFootprint(image.States) > cfg.GPU.VRAMBytes {
			continue // the paper's TW/OR exclusion
		}
		mOn, err := MeasureVariant(s, image, on)
		if err != nil {
			return err
		}
		mOff, err := MeasureVariant(s, image, off)
		if err != nil {
			return err
		}
		row := fmt.Sprintf("%-12s", s.Abbrev)
		for impl := 0; impl < NumImpls; impl++ {
			sp := 0.0
			if mOn.Times[impl].OK && mOff.Times[impl].OK && mOn.Times[impl].Time > 0 {
				sp = mOff.Times[impl].Time.Seconds() / mOn.Times[impl].Time.Seconds()
				agg[impl] = append(agg[impl], sp)
			}
			row += fmt.Sprintf(" %10s", fmtRatio(sp))
		}
		fmt.Fprintln(w, row)
	}
	fmt.Fprintf(w, "%-12s", "geo-mean")
	for impl := 0; impl < NumImpls; impl++ {
		fmt.Fprintf(w, " %10s", fmtRatio(geoMean(agg[impl])))
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "(paper: C Edge ~0.98x, CUDA Edge ~1.3x, C Node ~87x, CUDA Node ~82x)")
	return nil
}

// RunFig11 reproduces Figure 11: Credo's selected implementation against
// the naive always-C-Edge policy, with all selection overheads included.
func RunFig11(w io.Writer, cfg Config) error {
	return runCredoVsCEdge(w, cfg, "Figure 11 — Credo vs C Edge (Pascal)")
}

// RunFig12 reproduces Figure 12: the same comparison on the Volta
// p3.2xlarge, including the cross-architecture classifier F1.
func RunFig12(w io.Writer, cfg Config) error {
	// Train on the Pascal environment's labels.
	pascalDS, err := BuildDataset(Table1(), UseCases(), cfg)
	if err != nil {
		return err
	}
	forest, err := trainForest(pascalDS, cfg.Seed)
	if err != nil {
		return err
	}

	volta := cfg
	volta.GPU = gpusim.Volta()
	volta.CPU = xeonProfile()
	voltaDS, err := BuildDataset(Table1(), UseCases(), volta)
	if err != nil {
		return err
	}

	// Cross-architecture F1: Pascal-trained forest on Volta labels.
	pred := make([]int, len(voltaDS.X))
	for i, x := range voltaDS.X {
		pred[i] = forest.Predict(x)
	}
	f1 := macroF1(voltaDS.Y, pred)
	fmt.Fprintf(w, "Figure 12 — portability to Volta (tier %s)\n", cfg.Tier.Name)
	fmt.Fprintf(w, "Pascal-trained random forest on Volta labels: F1 = %.1f%% (paper: 72.2%%)\n", 100*f1)

	// Paradigm flips: fraction of variants where the winning CUDA
	// paradigm changed between architectures.
	flips, both := 0, 0
	var pascalEdgeWins, voltaEdgeWins int
	for i := range pascalDS.Measurements {
		pm, vm := pascalDS.Measurements[i], voltaDS.Measurements[i]
		if pm.CUDAExcluded || vm.CUDAExcluded {
			continue
		}
		pEdge := pm.Speedup(core.CUDAEdge, core.CUDANode) > 1
		vEdge := vm.Speedup(core.CUDAEdge, core.CUDANode) > 1
		both++
		if pEdge != vEdge {
			flips++
		}
		if pEdge {
			pascalEdgeWins++
		}
		if vEdge {
			voltaEdgeWins++
		}
	}
	fmt.Fprintf(w, "CUDA Edge wins: %d/%d on Pascal vs %d/%d on Volta (paper: Edge overtakes Node in 8.3%% more cases)\n",
		pascalEdgeWins, both, voltaEdgeWins, both)

	// Architecture speedups of the CUDA implementations.
	var edgeImp, nodeImp []float64
	for i := range pascalDS.Measurements {
		pm, vm := pascalDS.Measurements[i], voltaDS.Measurements[i]
		if pm.CUDAExcluded || vm.CUDAExcluded {
			continue
		}
		if vm.Times[core.CUDAEdge].Time > 0 {
			edgeImp = append(edgeImp, pm.Times[core.CUDAEdge].Time.Seconds()/vm.Times[core.CUDAEdge].Time.Seconds())
		}
		if vm.Times[core.CUDANode].Time > 0 {
			nodeImp = append(nodeImp, pm.Times[core.CUDANode].Time.Seconds()/vm.Times[core.CUDANode].Time.Seconds())
		}
	}
	fmt.Fprintf(w, "Volta vs Pascal: CUDA Edge %s, CUDA Node %s faster (paper: 3.2x and 3.8x)\n",
		fmtRatio(geoMean(edgeImp)), fmtRatio(geoMean(nodeImp)))

	fmt.Fprintln(w)
	return runCredoVsCEdge(w, volta, "Figure 12 — Credo vs C Edge (Volta p3.2xlarge)")
}

// runCredoVsCEdge prints the Credo-vs-baseline table shared by Figures 11
// and 12.
func runCredoVsCEdge(w io.Writer, cfg Config, title string) error {
	ds, err := BuildDataset(Table1(), UseCases(), cfg)
	if err != nil {
		return err
	}
	forest, err := trainForest(ds, cfg.Seed)
	if err != nil {
		return err
	}
	sel := core.Selector{Classifier: forest, GPU: cfg.GPU}

	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-12s %8s %12s %12s %12s %10s\n", "graph", "beliefs", "C Edge", "Credo", "choice", "speedup")
	var speedups []float64
	var bars []viz.Bar
	for _, m := range ds.Measurements {
		if !m.Spec.Bold || m.Case.States != 2 {
			continue
		}
		md := fullScaleMetadata(m)
		choice := sel.Choose(md, m.Spec.FullFootprint(m.Case.States))
		credoTime := m.Times[choice].Time
		if !m.Times[choice].OK {
			choice = core.CEdge
			credoTime = m.Times[core.CEdge].Time
		}
		sp := ratio(m.Times[core.CEdge].Time, credoTime)
		speedups = append(speedups, sp)
		bars = append(bars, viz.Bar{Label: m.Spec.Abbrev, Value: sp})
		fmt.Fprintf(w, "%-12s %8d %12s %12s %12s %10s\n",
			m.Spec.Abbrev, m.Case.States, fmtDur(m.Times[core.CEdge].Time), fmtDur(credoTime),
			choice.String(), fmtRatio(sp))
	}
	fmt.Fprintf(w, "geo-mean speedup of Credo over always-C-Edge: %s\n", fmtRatio(geoMean(speedups)))
	fmt.Fprintln(w)
	viz.BarChart(w, title+" (rendered): speedup over always-C-Edge", "x", bars)
	fmt.Fprintln(w, "(paper: little gain below ~1k nodes, Node paradigm in the middle ground, CUDA from ~100k nodes)")
	return nil
}

// fullScaleMetadata reconstructs the metadata the selector sees for a
// measurement (full-scale counts, scaled degree shape).
func fullScaleMetadata(m Measurement) (md graph.Metadata) {
	md.NumNodes = m.Spec.Nodes
	md.NumEdges = m.Spec.Edges
	md.States = m.Case.States
	md.AvgInDegree = float64(m.Spec.Edges) / float64(m.Spec.Nodes)
	// Degree extremes re-derived from the skew/imbalance features.
	if m.Feat[4] > 0 {
		md.MaxInDegree = int(md.AvgInDegree / m.Feat[4])
	}
	if m.Feat[3] > 0 && md.MaxInDegree > 0 {
		md.MaxOutDegree = int(float64(md.MaxInDegree) / m.Feat[3])
	}
	return md
}

// macroF1 is a thin alias for the ml package's scorer.
func macroF1(yTrue, yPred []int) float64 { return ml.MacroF1(yTrue, yPred) }

// xeonProfile returns the p3.2xlarge host CPU profile.
func xeonProfile() perfmodel.CPUProfile { return perfmodel.XeonE5_2686() }
