package bench

import (
	"bytes"
	"strings"
	"testing"

	"credo/internal/core"
	"credo/internal/gpusim"
)

// tinyTier keeps unit-test experiment runs fast.
var tinyTier = Tier{Name: "tiny", MaxNodes: 300, MaxEdges: 1500}

// tinySuite trims Table 1 to a representative spread.
func tinySuite() []GraphSpec {
	keep := map[string]bool{
		"10x40": true, "100x400": true, "1k4k": true, "10kx40k": true,
		"100kx400k": true, "K16": true, "GO": true, "2Mx8M": true, "LJ": true, "TW": true,
	}
	var out []GraphSpec
	for _, s := range Table1() {
		if keep[s.Abbrev] {
			out = append(out, s)
		}
	}
	return out
}

func TestTable1Shape(t *testing.T) {
	specs := Table1()
	if len(specs) != 34 {
		t.Fatalf("Table 1 has %d graphs, want 34", len(specs))
	}
	abbrevs := map[string]bool{}
	bold := 0
	for _, s := range specs {
		if abbrevs[s.Abbrev] {
			t.Errorf("duplicate abbrev %q", s.Abbrev)
		}
		abbrevs[s.Abbrev] = true
		if s.Nodes <= 0 || s.Edges <= 0 {
			t.Errorf("%s has non-positive size", s.Abbrev)
		}
		if s.Bold {
			bold++
		}
		if s.Kind == Kron && s.KronScale == 0 {
			t.Errorf("%s missing kron parameters", s.Abbrev)
		}
	}
	if bold < 10 {
		t.Errorf("bold subset has %d graphs; expected a substantial subset", bold)
	}
	// Spot-check two rows against the paper.
	tw, ok := specByAbbrev("TW")
	if !ok || tw.Nodes != 21297772 || tw.Edges != 265025809 {
		t.Errorf("TW row mismatch: %+v", tw)
	}
	k16, ok := specByAbbrev("K16")
	if !ok || k16.Nodes != 55321 {
		t.Errorf("K16 row mismatch: %+v", k16)
	}
}

func TestScaledSize(t *testing.T) {
	tier := Tier{Name: "t", MaxNodes: 1000, MaxEdges: 10000}
	small := GraphSpec{Nodes: 100, Edges: 400}
	if n, e := small.ScaledSize(tier); n != 100 || e != 400 {
		t.Errorf("small graph rescaled to %d/%d", n, e)
	}
	big := GraphSpec{Nodes: 1_000_000, Edges: 4_000_000}
	n, e := big.ScaledSize(tier)
	if n != 1000 || e != 4000 {
		t.Errorf("node-capped graph scaled to %d/%d, want 1000/4000", n, e)
	}
	dense := GraphSpec{Nodes: 2000, Edges: 1_000_000}
	n, e = dense.ScaledSize(tier)
	if e != 10000 {
		t.Errorf("edge-capped graph scaled to %d/%d, want edges 10000", n, e)
	}
	if f := big.ScaleFactor(tier); f != 1000 {
		t.Errorf("scale factor = %v, want 1000", f)
	}
}

func TestTierByName(t *testing.T) {
	for _, name := range []string{"", "ci", "small", "medium"} {
		if _, err := TierByName(name); err != nil {
			t.Errorf("TierByName(%q): %v", name, err)
		}
	}
	if _, err := TierByName("bogus"); err == nil {
		t.Error("TierByName accepted bogus tier")
	}
}

func TestGenerateAllKinds(t *testing.T) {
	tier := tinyTier
	for _, abbrev := range []string{"1k4k", "K16", "GO"} {
		spec, ok := specByAbbrev(abbrev)
		if !ok {
			t.Fatalf("missing spec %s", abbrev)
		}
		g, err := spec.Generate(2, tier, 1)
		if err != nil {
			t.Fatalf("%s: %v", abbrev, err)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", abbrev, err)
		}
		if g.NumNodes > 2*tier.MaxNodes+2 {
			t.Errorf("%s: %d nodes exceeds tier cap", abbrev, g.NumNodes)
		}
	}
}

func TestMeasureVariantCrossover(t *testing.T) {
	cfg := DefaultConfig(tinyTier)
	binary := UseCases()[0]

	small, _ := specByAbbrev("10x40")
	m, err := MeasureVariant(small, binary, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Best.IsCUDA() {
		t.Errorf("10x40 best = %v; GPU overhead should dominate", m.Best)
	}

	big, _ := specByAbbrev("2Mx8M")
	m, err = MeasureVariant(big, binary, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Best.IsCUDA() {
		t.Errorf("2Mx8M best = %v; want a CUDA implementation", m.Best)
	}
	if m.ScaleFactor <= 1 {
		t.Errorf("2Mx8M scale factor = %v, want > 1", m.ScaleFactor)
	}
}

func TestVRAMExclusion(t *testing.T) {
	cfg := DefaultConfig(tinyTier)
	image := UseCases()[2]
	tw, _ := specByAbbrev("TW")
	m, err := MeasureVariant(tw, image, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !m.CUDAExcluded {
		t.Error("TW at 32 beliefs not excluded from the 8 GB device")
	}
	if m.Times[core.CUDAEdge].OK {
		t.Error("excluded variant carries a CUDA time")
	}
	// On a 16 GB Volta the same graph still does not fit at 32 beliefs
	// (footprint ≈ 100 GB), but a mid-size one does.
	lj, _ := specByAbbrev("LJ")
	cfgV := cfg
	cfgV.GPU = gpusim.Volta()
	m, err = MeasureVariant(lj, UseCases()[1], cfgV)
	if err != nil {
		t.Fatal(err)
	}
	if m.CUDAExcluded {
		t.Error("LJ at 3 beliefs should fit Volta's 16 GB")
	}
}

func TestBuildDataset(t *testing.T) {
	cfg := DefaultConfig(tinyTier)
	ds, err := BuildDataset(tinySuite(), UseCases(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Measurements) != len(tinySuite())*3 {
		t.Fatalf("measurements = %d, want %d", len(ds.Measurements), len(tinySuite())*3)
	}
	if len(ds.X) != len(ds.Y) || len(ds.X) == 0 {
		t.Fatalf("dataset rows %d/%d", len(ds.X), len(ds.Y))
	}
	if len(ds.X) >= len(ds.Measurements) {
		t.Error("VRAM-excluded variants should not appear as classifier rows")
	}
	// Both labels must occur (the classification problem is non-trivial).
	seen := map[int]bool{}
	for _, y := range ds.Y {
		seen[y] = true
	}
	if len(seen) < 2 {
		t.Errorf("dataset is single-class: %v", seen)
	}
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 28 {
		t.Fatalf("registry has %d experiments, want 28", len(exps))
	}
	ids := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("experiment %+v incomplete", e.ID)
		}
		if ids[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		ids[e.ID] = true
	}
	if _, ok := ByID("fig7"); !ok {
		t.Error("ByID(fig7) not found")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID accepted unknown id")
	}
}

// TestQuickExperimentsRun smoke-tests the cheap experiments end to end.
func TestQuickExperimentsRun(t *testing.T) {
	cfg := DefaultConfig(tinyTier)
	for _, id := range []string{"table1", "aossoa", "parsers", "ingest"} {
		exp, ok := ByID(id)
		if !ok {
			t.Fatalf("missing experiment %s", id)
		}
		var buf bytes.Buffer
		if err := exp.Run(&buf, cfg); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s produced no output", id)
		}
	}
}

func TestAlgoCmpShowsSlowdown(t *testing.T) {
	var buf bytes.Buffer
	cfg := DefaultConfig(tinyTier)
	if err := RunAlgoCmp(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "geo-mean slowdown") {
		t.Errorf("missing summary: %s", out)
	}
}

func TestSharedMatrixSpeedupPositive(t *testing.T) {
	cfg := DefaultConfig(tinyTier)
	spec, _ := specByAbbrev("10kx40k")
	sp, err := sharedMatrixSpeedups(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range sp {
		if v < 1 {
			t.Errorf("impl %d shared-matrix speedup = %v, want >= 1", i, v)
		}
	}
	// CUDA Node benefits far more than CUDA Edge (paper: >25x vs 2x).
	if sp[2] <= sp[1] {
		t.Errorf("CUDA Node speedup %v not above CUDA Edge %v", sp[2], sp[1])
	}
}

func TestFig8SpeedupShapes(t *testing.T) {
	cfg := DefaultConfig(tinyTier)
	binary := UseCases()[0]
	big, _ := specByAbbrev("2Mx8M")
	m, err := MeasureVariant(big, binary, cfg)
	if err != nil {
		t.Fatal(err)
	}
	spNode := m.Speedup(core.CUDANode, core.CNode)
	spEdge := m.Speedup(core.CUDAEdge, core.CEdge)
	if spNode < 10 {
		t.Errorf("CUDA Node speedup %v too small for 2Mx8M (paper: up to ~120x)", spNode)
	}
	if spEdge < 1 || spEdge > 20 {
		t.Errorf("CUDA Edge speedup %v out of the paper's modest band", spEdge)
	}
	if spNode <= spEdge {
		t.Error("Node paradigm should benefit far more from the device than Edge")
	}
}

func TestGeoMean(t *testing.T) {
	if g := geoMean([]float64{1, 4}); g != 2 {
		t.Errorf("geoMean(1,4) = %v, want 2", g)
	}
	if g := geoMean(nil); g != 0 {
		t.Errorf("geoMean(nil) = %v, want 0", g)
	}
	if g := geoMean([]float64{0, 0}); g != 0 {
		t.Errorf("geoMean(zeros) = %v, want 0", g)
	}
}

func TestPercentiles(t *testing.T) {
	p := percentiles([]float64{1, 2, 3, 4, 5})
	if p[0] != 2 || p[1] != 3 || p[2] != 4 {
		t.Errorf("percentiles = %v, want [2 3 4]", p)
	}
	if p := percentiles(nil); p != [3]float64{} {
		t.Errorf("empty percentiles = %v", p)
	}
}

// TestAllExperimentsRun executes every registered experiment end to end at
// the tiny tier — the integration test of the whole harness. Skipped with
// -short.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep skipped in -short mode")
	}
	cfg := DefaultConfig(tinyTier)
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf, cfg); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
			if !strings.Contains(buf.String(), "\n") {
				t.Errorf("%s output suspiciously short: %q", e.ID, buf.String())
			}
		})
	}
}

func TestDatasetCSV(t *testing.T) {
	cfg := DefaultConfig(tinyTier)
	var buf bytes.Buffer
	// Use the tiny suite via direct dataset build and check the CSV shape
	// through the public experiment (full suite is too slow here), so just
	// validate header construction by running with the tiny tier.
	if err := RunDataset(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+len(Table1())*3 {
		t.Fatalf("CSV has %d lines, want %d", len(lines), 1+len(Table1())*3)
	}
	if !strings.HasPrefix(lines[0], "graph,usecase,nodes,edges,num_nodes") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(buf.String(), "CUDA Node,Node") {
		t.Error("no CUDA Node labeled rows in dataset")
	}
}
