package bench

import (
	"fmt"
	"io"

	"credo/internal/cudabp"
	"credo/internal/gpusim"
)

// RunProfile reproduces the §4.1.1 overhead analysis: the nvprof-style
// breakdown of where simulated device time goes, for the smallest
// benchmark (the paper: memory management is 99.8% of execution) and for
// graphs at or above the crossover (the paper: 71% on average).
func RunProfile(w io.Writer, cfg Config) error {
	fmt.Fprintf(w, "§4.1.1 — device time breakdown (CUDA Node, binary beliefs, tier %s)\n", cfg.Tier.Name)
	fmt.Fprintf(w, "%-12s %12s %10s %10s %10s %10s %10s %12s\n",
		"graph", "sim total", "init", "transfer", "launch", "kernels", "overhead%", "paper")
	var largeOverheads []float64
	for _, abbrev := range []string{"10x40", "1k4k", "100kx400k", "600kx1200k", "2Mx8M", "LJ"} {
		spec, ok := specByAbbrev(abbrev)
		if !ok {
			continue
		}
		g, err := spec.Generate(2, cfg.Tier, cfg.Seed)
		if err != nil {
			return err
		}
		dev := gpusim.NewDevice(cfg.GPU)
		if _, err := cudabp.RunNode(g, dev, cudabp.Options{Options: cfg.Options}); err != nil {
			return err
		}
		st := dev.Stats()
		// Extrapolate the size-proportional components to full scale, as
		// everywhere else in the harness.
		r := spec.ScaleFactor(cfg.Tier)
		transferBytes := float64(st.BytesToDevice+st.BytesToHost) / (cfg.GPU.PCIeBandwidthGBps * 1e9)
		transferLatency := st.TransferTime - transferBytes
		if transferLatency < 0 {
			transferLatency = 0
		}
		transfer := transferLatency + r*transferBytes
		kernels := r * (st.ComputeTime + st.MemoryTime + st.AtomicTime + st.SyncTime)
		overhead := st.InitTime + transfer + st.LaunchTime
		total := overhead + kernels
		frac := 100 * overhead / total
		note := ""
		switch abbrev {
		case "10x40":
			note = "99.8%"
		case "100kx400k", "600kx1200k", "2Mx8M", "LJ":
			note = "~71% avg"
			largeOverheads = append(largeOverheads, frac)
		}
		fmt.Fprintf(w, "%-12s %12.1f %10.1f %10.1f %10.1f %10.1f %9.1f%% %12s\n",
			abbrev, 1e3*total, 1e3*st.InitTime, 1e3*transfer, 1e3*st.LaunchTime,
			1e3*kernels, frac, note)
	}
	if len(largeOverheads) > 0 {
		var sum float64
		for _, v := range largeOverheads {
			sum += v
		}
		fmt.Fprintf(w, "mean overhead fraction at/above the crossover: %.1f%% (paper: 71%%)\n",
			sum/float64(len(largeOverheads)))
	}
	fmt.Fprintln(w, "(all columns in simulated milliseconds; overhead = init + transfer + launch)")

	// Per-kernel profile of one representative run.
	spec, _ := specByAbbrev("2Mx8M")
	g, err := spec.Generate(2, cfg.Tier, cfg.Seed)
	if err != nil {
		return err
	}
	dev := gpusim.NewDevice(cfg.GPU)
	if _, err := cudabp.RunEdge(g, dev, cudabp.Options{Options: cfg.Options}); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nper-kernel profile of CUDA Edge on 2Mx8M (scaled execution):\n")
	fmt.Fprintf(w, "%-16s %10s %12s %14s %14s %12s\n", "kernel", "launches", "sim-time", "ops", "bytes", "atomics")
	for _, k := range dev.KernelProfile() {
		fmt.Fprintf(w, "%-16s %10d %11.3fms %14d %14d %12d\n",
			k.Name, k.Launches, 1e3*k.Time, k.Ops, k.Bytes, k.Atomics)
	}
	return nil
}
