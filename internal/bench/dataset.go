package bench

import (
	"fmt"
	"math"
	"sync"
	"time"

	"credo/internal/bp"
	"credo/internal/core"
	"credo/internal/cudabp"
	"credo/internal/features"
	"credo/internal/gpusim"
	"credo/internal/perfmodel"
)

// NumImpls is the number of Credo implementations measured per variant.
const NumImpls = 4

// ImplTime is one implementation's modelled result on one variant.
type ImplTime struct {
	// Time is the modelled full-scale execution time.
	Time time.Duration
	// Iterations is the measured iteration count at the scaled tier.
	Iterations int
	// OK is false when the implementation could not run (VRAM exceeded).
	OK bool
}

// Measurement is the full record of one benchmark variant: one Table 1
// graph under one use case.
type Measurement struct {
	Spec GraphSpec
	Case UseCase

	// ScaledNodes and ScaledEdges are the executed sizes.
	ScaledNodes int
	ScaledEdges int
	// ScaleFactor is the full-scale/scaled extrapolation ratio.
	ScaleFactor float64

	// Feat is the §3.7 feature vector at full scale.
	Feat []float64

	// Times is indexed by core.Implementation.
	Times [NumImpls]ImplTime

	// CUDAExcluded marks variants whose full-scale footprint exceeds
	// VRAM (the paper's TW and OR exclusions).
	CUDAExcluded bool

	// Best is the fastest runnable implementation and Label its paradigm.
	Best  core.Implementation
	Label features.Label
}

// Config bundles the environment a measurement runs under.
type Config struct {
	Tier Tier
	CPU  perfmodel.CPUProfile
	GPU  gpusim.ArchProfile
	// Options are the propagation options; work queues default on, as in
	// Credo's final configuration.
	Options bp.Options
	Seed    int64

	// PoolWorkers is the persistent worker-pool team size used by the
	// pool-engine experiment and runners.
	PoolWorkers int

	// IngestWorkers is the parallel chunked ingest fan-out used by the
	// ingest experiment (0 keeps the experiment's default sweep).
	IngestWorkers int
}

// DefaultConfig returns the paper's §4 environment at the given tier:
// i7-7700HQ host, Pascal GTX 1070 device, 0.001 threshold, 200-iteration
// cap, work queues on.
func DefaultConfig(t Tier) Config {
	return Config{
		Tier:          t,
		CPU:           perfmodel.I7_7700HQ(),
		GPU:           gpusim.Pascal(),
		Options:       bp.Options{WorkQueue: true},
		Seed:          1,
		PoolWorkers:   8, // the paper's §2.4 maximum thread count
		IngestWorkers: 8,
	}
}

// scaleOps extrapolates per-element operation counts by r, keeping
// iteration counts (which are scale-invariant for a fixed topology family).
func scaleOps(ops bp.OpCounts, r float64) bp.OpCounts {
	s := func(v int64) int64 { return int64(math.Round(float64(v) * r)) }
	return bp.OpCounts{
		Iterations:     ops.Iterations,
		NodesProcessed: s(ops.NodesProcessed),
		EdgesProcessed: s(ops.EdgesProcessed),
		MemLoads:       s(ops.MemLoads),
		MemStores:      s(ops.MemStores),
		MatrixOps:      s(ops.MatrixOps),
		LogOps:         s(ops.LogOps),
		AtomicOps:      s(ops.AtomicOps),
		QueuePushes:    s(ops.QueuePushes),
		RandomLoads:    s(ops.RandomLoads),
		SyncOps:        ops.SyncOps, // per-sweep barrier crossings, scale-invariant like Iterations
	}
}

// scaleDeviceTime extrapolates a device run's simulated time to full
// scale: size-proportional components (kernel work, transferred bytes)
// scale by r; fixed costs (init, per-launch, per-transfer latency) do not.
func scaleDeviceTime(st gpusim.Stats, gpu gpusim.ArchProfile, r float64) time.Duration {
	transferBytes := float64(st.BytesToDevice+st.BytesToHost) / (gpu.PCIeBandwidthGBps * 1e9)
	transferLatency := st.TransferTime - transferBytes
	if transferLatency < 0 {
		transferLatency = 0
	}
	secs := st.InitTime + st.LaunchTime + transferLatency +
		r*(transferBytes+st.ComputeTime+st.MemoryTime+st.AtomicTime+st.SyncTime)
	return time.Duration(secs * float64(time.Second))
}

// MeasureVariant runs all four implementations on the scaled graph and
// reports full-scale modelled times plus the derived label.
func MeasureVariant(spec GraphSpec, uc UseCase, cfg Config) (Measurement, error) {
	g, err := spec.Generate(uc.States, cfg.Tier, cfg.Seed)
	if err != nil {
		return Measurement{}, fmt.Errorf("bench: generate %s: %w", spec.Abbrev, err)
	}
	m := Measurement{
		Spec:        spec,
		Case:        uc,
		ScaledNodes: g.NumNodes,
		ScaledEdges: g.NumEdges,
		ScaleFactor: spec.ScaleFactor(cfg.Tier),
	}

	// Features reflect the full-scale graph: node/edge counts from the
	// spec, degree shape from the scaled instance (topology-preserved).
	md := g.Stats()
	md.NumNodes = spec.Nodes
	md.NumEdges = spec.Edges
	md.AvgInDegree = float64(spec.Edges) / float64(spec.Nodes)
	scaleDeg := float64(spec.Nodes) / float64(g.NumNodes)
	md.MaxInDegree = int(math.Round(float64(md.MaxInDegree) * scaleDeg))
	md.MaxOutDegree = int(math.Round(float64(md.MaxOutDegree) * scaleDeg))
	m.Feat = features.Vector(md)

	r := m.ScaleFactor

	// C implementations.
	edgeRes := bp.RunEdge(g.Clone(), cfg.Options)
	m.Times[core.CEdge] = ImplTime{
		Time:       cfg.CPU.SequentialTime(scaleOps(edgeRes.Ops, r)),
		Iterations: edgeRes.Iterations,
		OK:         true,
	}
	nodeRes := bp.RunNode(g.Clone(), cfg.Options)
	m.Times[core.CNode] = ImplTime{
		Time:       cfg.CPU.SequentialTime(scaleOps(nodeRes.Ops, r)),
		Iterations: nodeRes.Iterations,
		OK:         true,
	}

	// CUDA implementations, gated on the full-scale footprint.
	if spec.FullFootprint(uc.States) > cfg.GPU.VRAMBytes {
		m.CUDAExcluded = true
	} else {
		copts := cudabp.Options{Options: cfg.Options}
		devE := gpusim.NewDevice(cfg.GPU)
		cuE, err := cudabp.RunEdge(g.Clone(), devE, copts)
		if err != nil {
			return m, fmt.Errorf("bench: cuda edge %s: %w", spec.Abbrev, err)
		}
		m.Times[core.CUDAEdge] = ImplTime{
			Time:       scaleDeviceTime(devE.Stats(), cfg.GPU, r),
			Iterations: cuE.Iterations,
			OK:         true,
		}
		devN := gpusim.NewDevice(cfg.GPU)
		cuN, err := cudabp.RunNode(g.Clone(), devN, copts)
		if err != nil {
			return m, fmt.Errorf("bench: cuda node %s: %w", spec.Abbrev, err)
		}
		m.Times[core.CUDANode] = ImplTime{
			Time:       scaleDeviceTime(devN.Stats(), cfg.GPU, r),
			Iterations: cuN.Iterations,
			OK:         true,
		}
	}

	m.Best = m.bestImpl()
	if m.Best.IsNode() {
		m.Label = features.LabelNode
	} else {
		m.Label = features.LabelEdge
	}
	return m, nil
}

func (m *Measurement) bestImpl() core.Implementation {
	best := core.CEdge
	for impl := core.Implementation(0); impl < NumImpls; impl++ {
		t := m.Times[impl]
		if !t.OK {
			continue
		}
		if !m.Times[best].OK || t.Time < m.Times[best].Time {
			best = impl
		}
	}
	return best
}

// Speedup returns the ratio of the baseline implementation's time to the
// candidate's (>1 means candidate is faster). Zero when either is absent.
func (m *Measurement) Speedup(candidate, baseline core.Implementation) float64 {
	c, b := m.Times[candidate], m.Times[baseline]
	if !c.OK || !b.OK || c.Time <= 0 {
		return 0
	}
	return b.Time.Seconds() / c.Time.Seconds()
}

// Dataset is the labeled classifier dataset plus its measurements.
type Dataset struct {
	X            [][]float64
	Y            []int
	Measurements []Measurement
}

// datasetCache memoizes full-suite datasets per environment so that the
// classifier experiments (which all consume the same measurements) pay for
// the sweep once per credobench invocation.
var datasetCache sync.Map

type datasetKey struct {
	tier  string
	seed  int64
	gpu   string
	cpu   string
	queue bool
}

// BuildDataset measures every (spec, use case) variant. Variants whose
// full-scale footprint exceeds VRAM are measured (C only) but excluded
// from the classifier rows, matching the paper's 95-of-102 full dataset
// (§4.3). Full-suite sweeps are memoized per environment.
func BuildDataset(specs []GraphSpec, cases []UseCase, cfg Config) (*Dataset, error) {
	var key datasetKey
	cacheable := len(specs) == len(Table1()) && len(cases) == len(UseCases())
	if cacheable {
		key = datasetKey{cfg.Tier.Name, cfg.Seed, cfg.GPU.Name, cfg.CPU.Name, cfg.Options.WorkQueue}
		if v, ok := datasetCache.Load(key); ok {
			return v.(*Dataset), nil
		}
	}
	ds, err := buildDataset(specs, cases, cfg)
	if err != nil {
		return nil, err
	}
	if cacheable {
		datasetCache.Store(key, ds)
	}
	return ds, nil
}

func buildDataset(specs []GraphSpec, cases []UseCase, cfg Config) (*Dataset, error) {
	ds := &Dataset{}
	for _, spec := range specs {
		for _, uc := range cases {
			m, err := MeasureVariant(spec, uc, cfg)
			if err != nil {
				return nil, err
			}
			ds.Measurements = append(ds.Measurements, m)
			if m.CUDAExcluded {
				continue
			}
			ds.X = append(ds.X, m.Feat)
			ds.Y = append(ds.Y, int(m.Label))
		}
	}
	return ds, nil
}
