package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"credo/internal/graph"
	"credo/internal/serve"
)

// churnLCG is a tiny deterministic generator for the evidence streams —
// the study's query sequences must be identical run to run, so the
// deterministic table (update counts, L∞ gaps) can be diffed.
type churnLCG uint64

func (r *churnLCG) next() uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r) >> 16
}

// churnStream builds a sequence of query documents over an n-node
// graph: a base clamp set, then each successive query re-clamps,
// retracts or adds churnPct percent of the nodes (at least one). This
// is the evidence-churn regime knob: 1% is a dashboard ticking over,
// 25% is a client replacing most of its observation set.
func churnStream(n, states, queries int, churnPct int, seed int64) []string {
	rng := churnLCG(seed*2654435761 + int64(churnPct))
	dense := make([]int32, n)
	for i := range dense {
		dense[i] = -1
	}
	clamps := n / 50
	if clamps < 2 {
		clamps = 2
	}
	for c := 0; c < clamps; c++ {
		dense[rng.next()%uint64(n)] = int32(rng.next() % uint64(states))
	}
	doc := func() string {
		var b strings.Builder
		b.WriteString(`{"evidence":[`)
		first := true
		for v, st := range dense {
			if st < 0 {
				continue
			}
			if !first {
				b.WriteByte(',')
			}
			first = false
			fmt.Fprintf(&b, `{"node":"%d","state":%d}`, v, st)
		}
		b.WriteString(`]}`)
		return b.String()
	}
	out := make([]string, 0, queries)
	out = append(out, doc())
	mutations := n * churnPct / 100
	if mutations < 1 {
		mutations = 1
	}
	for q := 1; q < queries; q++ {
		for m := 0; m < mutations; m++ {
			v := rng.next() % uint64(n)
			if dense[v] >= 0 {
				dense[v] = -1
			} else {
				dense[v] = int32(rng.next() % uint64(states))
			}
		}
		out = append(out, doc())
	}
	return out
}

// serveModeStats aggregates one engine mode over one stream (the first,
// necessarily cold, query is excluded from the per-query means).
type serveModeStats struct {
	updates   int64
	edges     int64
	wall      time.Duration
	iters     int
	converged int
	warm      int
	queries   int
}

func (st *serveModeStats) add(resp *serve.Response) {
	st.queries++
	st.updates += resp.Updates
	st.edges += resp.Edges
	st.wall += time.Duration(resp.WallNs)
	st.iters += resp.Iterations
	if resp.Converged {
		st.converged++
	}
	if resp.Warm {
		st.warm++
	}
}

// runServeStream replays docs against a fresh single-resident server in
// one mode. cold forces every query to run without a snapshot;
// otherwise the server warm-starts naturally from the second query on.
// It returns the per-stream stats plus every response past the first,
// so warm posteriors can be diffed against their cold controls.
func runServeStream(g *graph.Graph, cfg Config, engine string, docs []string, cold bool) (serveModeStats, []*serve.Response, error) {
	var st serveModeStats
	s := serve.New(serve.Config{
		Options: cfg.Options,
		Workers: cfg.PoolWorkers,
	})
	r, err := s.Load("bench", g.Clone())
	if err != nil {
		return st, nil, err
	}
	var resps []*serve.Response
	for i, doc := range docs {
		if cold {
			r.InvalidateWarm()
		}
		rq, err := r.DecodeQuery([]byte(doc))
		if err != nil {
			return st, nil, err
		}
		resp, err := s.QueryResident(r, engine, rq)
		if err != nil {
			return st, nil, err
		}
		if i == 0 {
			continue // both modes pay an identical cold first query
		}
		st.add(resp)
		resps = append(resps, resp)
	}
	return st, resps, nil
}

// beliefLinf returns the L∞ distance between two all-nodes belief maps.
func beliefLinf(a, b map[string][]float32) float64 {
	var max float64
	for name, av := range a {
		bv := b[name]
		for j := range av {
			d := float64(av[j] - bv[j])
			if d < 0 {
				d = -d
			}
			if d > max {
				max = d
			}
		}
	}
	return max
}

// serveCase is one graph × churn regime across the three engine modes.
type serveCase struct {
	name     string
	churnPct int
	nodes    int
	cold     serveModeStats // cold residual (snapshot invalidated per query)
	warm     serveModeStats // warm residual
	relax    serveModeStats // warm relax at cfg.PoolWorkers
	maxLinf  float64        // worst warm-vs-cold posterior gap in the stream
}

// RunServeStudy is the serving study (EXPERIMENTS.md X5): cold vs warm
// re-convergence across evidence-churn regimes, plus batched vs
// unbatched server throughput. Streams of queries whose evidence sets
// drift by 1, 5 and 25% of nodes per step replay against the serving
// layer three ways — cold residual, warm residual, warm relax — and
// the study reports per-query updates, the warm/cold cost ratio, and
// the L∞ distance of every warm posterior from its cold control. The
// expectation under test: warm cost scales with the perturbed
// frontier, not graph size, so the warm win shrinks as churn grows;
// the crossover is the churn rate where the ratio reaches ~1. The L∞
// column tracks fidelity across the same sweep — on loopy topologies
// large evidence deltas can leave the warm run in a different fixpoint
// than a cold start (hysteresis), so drift past WarmTol at high churn
// is a finding, not a failure.
//
// The second half measures the cross-query batcher as a server: the
// same query set served solo (sequential auto-engine queries, warm
// path enabled) vs in K-lane batched flushes via Server.QueryBatched.
func RunServeStudy(w io.Writer, cfg Config) error {
	type graphCase struct {
		name string
		g    *graph.Graph
	}
	var cases []graphCase
	sprinkler, err := sprinklerMRF()
	if err != nil {
		return err
	}
	cases = append(cases, graphCase{"sprinkler", sprinkler})
	spec, ok := specByAbbrev("GO")
	if !ok {
		return fmt.Errorf("bench: missing spec GO")
	}
	social, err := spec.Generate(2, cfg.Tier, cfg.Seed)
	if err != nil {
		return err
	}
	cases = append(cases, graphCase{spec.Abbrev, social})

	fmt.Fprintf(w, "serve — warm-start serving across evidence-churn regimes (tier %s, %d workers)\n",
		cfg.Tier.Name, cfg.PoolWorkers)
	fmt.Fprintln(w, "streams of 6 queries; per-query means exclude each stream's cold first query")

	const queries = 6
	churns := []int{1, 5, 25}
	var rows []serveCase
	for _, gc := range cases {
		for _, churn := range churns {
			docs := churnStream(gc.g.NumNodes, gc.g.States, queries, churn, cfg.Seed)
			c := serveCase{name: gc.name, churnPct: churn, nodes: gc.g.NumNodes}
			var coldResps, warmResps []*serve.Response
			if c.cold, coldResps, err = runServeStream(gc.g, cfg, serve.EngineResidual, docs, true); err != nil {
				return err
			}
			if c.warm, warmResps, err = runServeStream(gc.g, cfg, serve.EngineResidual, docs, false); err != nil {
				return err
			}
			if c.relax, _, err = runServeStream(gc.g, cfg, serve.EngineRelax, docs, false); err != nil {
				return err
			}
			for i := range warmResps {
				if d := beliefLinf(warmResps[i].Beliefs, coldResps[i].Beliefs); d > c.maxLinf {
					c.maxLinf = d
				}
			}
			rows = append(rows, c)
		}
	}

	fmt.Fprintf(w, "\nresidual engine, deterministic (cold = snapshot dropped before every query):\n")
	fmt.Fprintf(w, "%-10s %6s %8s %12s %12s %10s %6s %10s %8s\n",
		"graph", "churn", "nodes", "cold upd/q", "warm upd/q", "warm/cold", "warm", "maxL∞", "withinTol")
	for _, c := range rows {
		q := int64(c.cold.queries)
		fmt.Fprintf(w, "%-10s %5d%% %8d %12d %12d %10s %3d/%-2d %10.2g %8v\n",
			c.name, c.churnPct, c.nodes,
			c.cold.updates/q, c.warm.updates/q,
			fmtRatio(float64(c.warm.updates)/float64(c.cold.updates)),
			c.warm.warm, c.warm.queries,
			c.maxLinf, c.maxLinf <= float64(serve.WarmTol))
	}

	fmt.Fprintln(w, "\nmeasured wall-clock on this host (varies run to run; relax is parallel, its update counts vary too):")
	fmt.Fprintf(w, "%-10s %6s %12s %12s %9s %12s %14s\n",
		"graph", "churn", "cold/qry", "warm/qry", "speedup", "relax/qry", "relax upd/q")
	for _, c := range rows {
		q := time.Duration(c.cold.queries)
		fmt.Fprintf(w, "%-10s %5d%% %12s %12s %9s %12s %14d\n",
			c.name, c.churnPct,
			fmtDur(c.cold.wall/q), fmtDur(c.warm.wall/q),
			fmtRatio(float64(c.cold.wall)/float64(c.warm.wall)),
			fmtDur(c.relax.wall/q),
			c.relax.updates/int64(c.relax.queries))
	}

	// Batched vs unbatched serving, across the churn sweep: one-at-a-time
	// auto-engine queries (warm path on — the daemon with batching
	// disabled) vs K-lane flushes through Server.QueryBatched. At low
	// churn the solo path's warm residual increment is frontier-local and
	// nearly free, so batching — which re-converges every lane with full
	// synchronous sweeps — loses on wall clock; as churn approaches
	// independent-evidence clients (100%) the warm increment degenerates
	// to a cold run and the batcher's amortized structure pass claws the
	// gap back toward parity. The residual schedule's update advantage
	// (it touches only what moved; the batch sweeps everything) means the
	// batcher's decisive win is admission, not latency: each flush of K
	// queries consumes one admission slot, so a saturated server admits
	// K× the query throughput. The sweeps/conv columns watch for the
	// warm-staging pathology the per-lane delta gate exists to prevent —
	// an oscillating warm-staged lane dragging the whole flush to the
	// iteration cap.
	const batchK = 8
	const batchQueries = 16
	fmt.Fprintf(w, "\nbatched vs unbatched serving (%s, %d queries per regime, K=%d):\n",
		spec.Abbrev, batchQueries, batchK)
	fmt.Fprintln(w, "measured wall-clock on this host (varies run to run):")
	fmt.Fprintf(w, "%6s %14s %12s %14s %12s %7s %9s %9s\n",
		"churn", "solo upd", "solo/qry", "batch upd", "batch/qry", "sweeps", "conv", "gain")
	for _, churn := range []int{5, 25, 100} {
		docs := churnStream(social.NumNodes, social.States, batchQueries, churn, cfg.Seed+1)

		soloSrv := serve.New(serve.Config{Options: cfg.Options, Workers: cfg.PoolWorkers, BatchK: 1})
		soloRes, err := soloSrv.Load("bench", social.Clone())
		if err != nil {
			return err
		}
		var soloUpdates int64
		start := time.Now()
		for _, doc := range docs {
			rq, err := soloRes.DecodeQuery([]byte(doc))
			if err != nil {
				return err
			}
			resp, err := soloSrv.QueryResident(soloRes, serve.EngineAuto, rq)
			if err != nil {
				return err
			}
			soloUpdates += resp.Updates
		}
		soloWall := time.Since(start)

		batchSrv := serve.New(serve.Config{Options: cfg.Options, Workers: cfg.PoolWorkers, BatchK: batchK})
		batchRes, err := batchSrv.Load("bench", social.Clone())
		if err != nil {
			return err
		}
		var batchUpdates int64
		batchSweeps, batchConv := 0, 0
		start = time.Now()
		for at := 0; at < len(docs); at += batchK {
			end := at + batchK
			if end > len(docs) {
				end = len(docs)
			}
			rqs := make([]*serve.ResolvedQuery, 0, end-at)
			for _, doc := range docs[at:end] {
				rq, err := batchRes.DecodeQuery([]byte(doc))
				if err != nil {
					return err
				}
				rqs = append(rqs, rq)
			}
			resps, err := batchSrv.QueryBatched(batchRes, rqs)
			if err != nil {
				return err
			}
			for _, resp := range resps {
				batchUpdates += resp.Updates
				if resp.Iterations > batchSweeps {
					batchSweeps = resp.Iterations
				}
				if resp.Converged {
					batchConv++
				}
			}
		}
		batchWall := time.Since(start)

		fmt.Fprintf(w, "%5d%% %14d %12s %14d %12s %7d %6d/%-2d %9s\n",
			churn, soloUpdates, fmtDur(soloWall/batchQueries),
			batchUpdates, fmtDur(batchWall/batchQueries),
			batchSweeps, batchConv, batchQueries,
			fmtRatio(float64(soloWall)/float64(batchWall)))
	}
	return nil
}
