package bench

import (
	"fmt"
	"io"

	"credo/internal/bp"
	"credo/internal/gen"
	"credo/internal/graph"
)

// RunAccuracy measures the approximation quality of loopy BP — the
// question the paper's correctness argument leans on implicitly when it
// trades the exact two-pass algorithm for Algorithm 1. Small loopy graphs
// where the junction tree is still tractable are solved exactly, then each
// loopy engine's marginals are compared by mean total-variation distance.
func RunAccuracy(w io.Writer, cfg Config) error {
	fmt.Fprintf(w, "Loopy BP approximation quality vs exact junction-tree marginals\n")
	fmt.Fprintf(w, "%-26s %10s %12s %12s %12s\n",
		"graph", "treewidth", "sum-product", "damped 0.5", "residual")
	for _, tc := range []struct {
		name string
		mk   func() (*graph.Graph, error)
	}{
		{"tree 63x2 (exact regime)", func() (*graph.Graph, error) {
			return gen.Tree(63, 2, gen.Config{Seed: cfg.Seed, States: 2})
		}},
		{"grid 8x8 (loopy)", func() (*graph.Graph, error) {
			return gen.Grid(8, 8, gen.Config{Seed: cfg.Seed, States: 2, Keep: 0.7})
		}},
		{"sparse random 40x60", func() (*graph.Graph, error) {
			return gen.Synthetic(40, 60, gen.Config{Seed: cfg.Seed, States: 2})
		}},
		{"denser random 30x70", func() (*graph.Graph, error) {
			return gen.Synthetic(30, 70, gen.Config{Seed: cfg.Seed + 1, States: 2})
		}},
	} {
		g, err := tc.mk()
		if err != nil {
			return err
		}
		jt, err := bp.NewJunctionTree(g)
		if err != nil {
			fmt.Fprintf(w, "%-26s %10s (treewidth beyond the exact budget)\n", tc.name, "-")
			continue
		}
		if err := jt.Calibrate(); err != nil {
			return err
		}
		exact := make([][]float64, g.NumNodes)
		for v := int32(0); v < int32(g.NumNodes); v++ {
			m, err := jt.Marginal(v)
			if err != nil {
				return err
			}
			exact[v] = m
		}

		meanTV := func(run func(*graph.Graph, bp.Options) bp.Result, opts bp.Options) float64 {
			c := g.Clone()
			run(c, opts)
			var sum float64
			for v := int32(0); v < int32(g.NumNodes); v++ {
				b := c.Belief(v)
				var tv float64
				for j := range b {
					d := float64(b[j]) - exact[v][j]
					if d < 0 {
						d = -d
					}
					tv += d
				}
				sum += tv / 2
			}
			return sum / float64(g.NumNodes)
		}

		fmt.Fprintf(w, "%-26s %10d %12.4f %12.4f %12.4f\n",
			tc.name, jt.Width()-1,
			meanTV(bp.RunNode, bp.Options{}),
			meanTV(bp.RunNode, bp.Options{Damping: 0.5}),
			meanTV(bp.RunResidual, bp.Options{}),
		)
	}
	fmt.Fprintln(w, "(mean total-variation distance per node; 0 = exact. Loopy BP is exact on")
	fmt.Fprintln(w, " trees only when messages exclude the recipient — Algorithm 1 does not, so")
	fmt.Fprintln(w, " even the tree row carries a small echo bias, which the paper accepts for")
	fmt.Fprintln(w, " the scalability it buys.)")
	return nil
}
