package bench

import (
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"credo/internal/gen"
	"credo/internal/graph"
	"credo/internal/mtxbp"
	"credo/internal/telemetry"
)

// RunIngest measures the parallel chunked mtxbp ingest path against the
// sequential streaming reader on generated million-edge-scale corpora
// (DESIGN.md §11). For each corpus it reports, per worker count, the
// measured ingest wall clock and the modelled multi-core speedup derived
// from the measured parse/stitch phase breakdown — on a single-core host
// the wall clocks coincide, so the modelled column is the paper-style
// scaling estimate (the same convention the pool experiment uses). Every
// parallel result is verified bit-identical to the sequential graph
// before its row is printed.
func RunIngest(w io.Writer, cfg Config) error {
	fmt.Fprintf(w, "parallel chunked ingest vs sequential streaming (mtxbp)\n")
	dir, err := os.MkdirTemp("", "credo-ingest")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// The shared-matrix corpus carries endpoint-only edge lines, so it can
	// reach Table-1-like edge counts in a few dozen MB of text; the
	// per-edge corpus carries full matrices per line and stays smaller.
	sharedEdges := cfg.Tier.MaxEdges * 15
	if sharedEdges > 4_000_000 {
		sharedEdges = 4_000_000
	}
	corpora := []struct {
		name   string
		n, m   int
		shared bool
	}{
		{"shared", cfg.Tier.MaxNodes * 4, sharedEdges, true},
		{"per-edge", cfg.Tier.MaxNodes, cfg.Tier.MaxEdges, false},
	}

	workerCounts := []int{2, 4, 8}
	if cfg.IngestWorkers > 0 {
		found := false
		for _, wc := range workerCounts {
			if wc == cfg.IngestWorkers {
				found = true
			}
		}
		if !found {
			workerCounts = append(workerCounts, cfg.IngestWorkers)
		}
	}

	for _, c := range corpora {
		nodePath := filepath.Join(dir, c.name+".nodes.mtx")
		edgePath := filepath.Join(dir, c.name+".edges.mtx")
		if err := writeIngestCorpus(nodePath, edgePath, c.n, c.m, c.shared, cfg.Seed); err != nil {
			return err
		}
		size := fileSize(nodePath) + fileSize(edgePath)
		fmt.Fprintf(w, "\ncorpus %-8s: %d nodes, %d edges, %.1f MB on disk\n",
			c.name, c.n, c.m, float64(size)/(1<<20))

		// Each configuration is repeated and the minimum wall kept: on a
		// time-shared host single-shot reads are dominated by scheduling
		// noise, and the minimum is the least-perturbed observation.
		const reps = 3
		var want *graph.Graph
		var seqWall time.Duration
		for rep := 0; rep < reps; rep++ {
			start := time.Now()
			g, err := mtxbp.ReadParallel(nodePath, edgePath, mtxbp.ReadOptions{Workers: 1})
			if err != nil {
				return err
			}
			if wall := time.Since(start); rep == 0 || wall < seqWall {
				seqWall = wall
			}
			want = g
		}
		fmt.Fprintf(w, "%-10s %12s %10s %10s  %s\n", "workers", "wall", "measured", "modelled", "verified")
		fmt.Fprintf(w, "%-10s %12s %10s %10s\n", "sequential", fmtDur(seqWall), "1.00x", "1.00x")

		for _, workers := range workerCounts {
			var wall time.Duration
			var best *ingestRecorder
			for rep := 0; rep < reps; rep++ {
				rec := &ingestRecorder{}
				start := time.Now()
				got, err := mtxbp.ReadParallel(nodePath, edgePath, mtxbp.ReadOptions{Workers: workers, Probe: rec})
				if err != nil {
					return err
				}
				repWall := time.Since(start)
				if err := ingestGraphsEqual(want, got); err != nil {
					return fmt.Errorf("ingest: %s at %d workers diverged from sequential: %w", c.name, workers, err)
				}
				if best == nil || repWall < wall {
					wall, best = repWall, rec
				}
			}
			measured := float64(seqWall) / float64(wall)
			modelled := modelledSpeedup(seqWall, wall, best, workers)
			fmt.Fprintf(w, "%-10d %12s %9.2fx %9.2fx  bit-identical\n",
				workers, fmtDur(wall), measured, modelled)
		}
	}
	fmt.Fprintln(w, "\n(modelled: Amdahl split — the run's measured parse+install fan-out wall is the")
	fmt.Fprintln(w, " parallel part, its remainder serial; on a multi-core host the measured column")
	fmt.Fprintln(w, " approaches it)")
	return nil
}

// writeIngestCorpus streams a synthetic graph straight to disk, never
// materializing it (the same path that produces larger-than-memory
// benchmark files).
func writeIngestCorpus(nodePath, edgePath string, n, m int, shared bool, seed int64) error {
	nf, err := os.Create(nodePath)
	if err != nil {
		return err
	}
	defer nf.Close()
	ef, err := os.Create(edgePath)
	if err != nil {
		return err
	}
	defer ef.Close()
	gcfg := gen.Config{Seed: seed, States: 2, Shared: shared}
	var sharedMat *graph.JointMatrix
	if shared {
		mat := graph.DiagonalJointMatrix(2, 0.75)
		sharedMat = &mat
	}
	sw, err := mtxbp.NewStreamWriter(nf, ef, n, m, 2, sharedMat)
	if err != nil {
		return err
	}
	return gen.StreamSynthetic(sw, n, m, gcfg)
}

// ingestRecorder keeps only the ingest phase summaries (Worker == -1).
type ingestRecorder struct {
	busyNs      int64
	wallNs      int64
	parseWallNs int64
}

func (r *ingestRecorder) Emit(e telemetry.Event) {
	if e.Kind == telemetry.KindIngest && e.Worker < 0 {
		r.busyNs += e.BusyNs
		r.wallNs += e.WallNs
		r.parseWallNs += e.Active
	}
}

// modelledSpeedup is the Amdahl estimate for the chunked pipeline on a
// host with enough cores for the requested fan-out. The phase summaries
// carry the wall clock of the fan-out sub-spans alone (Active); with p
// cores that span holds parseWall*min(workers, p) of parallelizable
// work, so the run's own serial remainder is parWall - parseWall
// (prologue, chunk alignment, order checks, CSR build). Per-goroutine
// busy sums are deliberately not used: under time-sharing on few cores
// each chunk's span stretches to the whole phase, inflating the sum by
// the interleave factor.
func modelledSpeedup(seqWall, parWall time.Duration, rec *ingestRecorder, workers int) float64 {
	cores := runtime.GOMAXPROCS(0)
	span := float64(workers)
	if c := float64(cores); c < span {
		span = c
	}
	work := float64(rec.parseWallNs) * span
	serial := float64(parWall.Nanoseconds()) - float64(rec.parseWallNs)
	if serial < 0 {
		serial = 0
	}
	return float64(seqWall.Nanoseconds()) / (serial + work/float64(workers))
}

// ingestGraphsEqual verifies got is bit-identical to want across the
// arrays the reader fills.
func ingestGraphsEqual(want, got *graph.Graph) error {
	if want.NumNodes != got.NumNodes || want.NumEdges != got.NumEdges || want.States != got.States {
		return fmt.Errorf("shape %d/%d/%d != %d/%d/%d",
			got.NumNodes, got.NumEdges, got.States, want.NumNodes, want.NumEdges, want.States)
	}
	if err := f32BitsEqual("priors", want.Priors, got.Priors); err != nil {
		return err
	}
	for i := range want.EdgeSrc {
		if want.EdgeSrc[i] != got.EdgeSrc[i] || want.EdgeDst[i] != got.EdgeDst[i] {
			return fmt.Errorf("edge %d endpoints differ", i)
		}
	}
	if want.SharedMatrix() != got.SharedMatrix() {
		return fmt.Errorf("shared-mode mismatch")
	}
	if want.SharedMatrix() {
		return f32BitsEqual("shared matrix", want.Shared.Data, got.Shared.Data)
	}
	for e := range want.EdgeMats {
		if err := f32BitsEqual("edge matrix", want.EdgeMats[e].Data, got.EdgeMats[e].Data); err != nil {
			return fmt.Errorf("edge %d: %w", e, err)
		}
	}
	return nil
}

func f32BitsEqual(what string, a, b []float32) error {
	if len(a) != len(b) {
		return fmt.Errorf("%s: length %d != %d", what, len(a), len(b))
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return fmt.Errorf("%s[%d]: %v != %v", what, i, a[i], b[i])
		}
	}
	return nil
}

func fileSize(path string) int64 {
	fi, err := os.Stat(path)
	if err != nil {
		return 0
	}
	return fi.Size()
}
