package ml

import (
	"encoding/json"
	"fmt"
	"io"
)

// Model persistence: trained decision trees and random forests serialize
// to JSON so that credobench can train Credo's selector once and credo can
// load it for every subsequent run — the deployment split the paper's
// §4.4 portability study assumes (train on one machine, carry the model to
// another).

type nodeJSON struct {
	Feature   int       `json:"feature,omitempty"`
	Threshold float64   `json:"threshold,omitempty"`
	Leaf      bool      `json:"leaf,omitempty"`
	Pred      int       `json:"pred,omitempty"`
	Counts    []int     `json:"counts,omitempty"`
	Left      *nodeJSON `json:"left,omitempty"`
	Right     *nodeJSON `json:"right,omitempty"`
}

type treeJSON struct {
	MaxDepth   int       `json:"max_depth"`
	Classes    int       `json:"classes"`
	Features   int       `json:"features"`
	Importance []float64 `json:"importance,omitempty"`
	Root       *nodeJSON `json:"root"`
}

type forestJSON struct {
	Format   string     `json:"format"`
	Classes  int        `json:"classes"`
	Features int        `json:"features"`
	Trees    []treeJSON `json:"trees"`
}

// forestFormat identifies the serialization; bump on breaking changes.
const forestFormat = "credo-random-forest-v1"

func encodeNode(n *treeNode) *nodeJSON {
	if n == nil {
		return nil
	}
	return &nodeJSON{
		Feature:   n.feature,
		Threshold: n.threshold,
		Leaf:      n.leaf,
		Pred:      n.pred,
		Counts:    n.counts,
		Left:      encodeNode(n.left),
		Right:     encodeNode(n.right),
	}
}

func decodeNode(n *nodeJSON) (*treeNode, error) {
	if n == nil {
		return nil, nil
	}
	out := &treeNode{
		feature:   n.Feature,
		threshold: n.Threshold,
		leaf:      n.Leaf,
		pred:      n.Pred,
		counts:    n.Counts,
	}
	if !n.Leaf {
		if n.Left == nil || n.Right == nil {
			return nil, fmt.Errorf("ml: decode: interior node missing children")
		}
		var err error
		if out.left, err = decodeNode(n.Left); err != nil {
			return nil, err
		}
		if out.right, err = decodeNode(n.Right); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func encodeTree(t *DecisionTree) treeJSON {
	return treeJSON{
		MaxDepth:   t.MaxDepth,
		Classes:    t.classes,
		Features:   t.features,
		Importance: t.importance,
		Root:       encodeNode(t.root),
	}
}

func decodeTree(j treeJSON) (*DecisionTree, error) {
	if j.Root == nil {
		return nil, fmt.Errorf("ml: decode: tree has no root")
	}
	if j.Classes <= 0 || j.Features <= 0 {
		return nil, fmt.Errorf("ml: decode: tree with %d classes / %d features", j.Classes, j.Features)
	}
	root, err := decodeNode(j.Root)
	if err != nil {
		return nil, err
	}
	return &DecisionTree{
		MaxDepth:   j.MaxDepth,
		classes:    j.Classes,
		features:   j.Features,
		importance: j.Importance,
		root:       root,
	}, nil
}

// SaveForest writes a fitted random forest as JSON.
func SaveForest(w io.Writer, f *RandomForest) error {
	if len(f.trees) == 0 {
		return fmt.Errorf("ml: save: forest is not fitted")
	}
	doc := forestJSON{
		Format:   forestFormat,
		Classes:  f.classes,
		Features: f.features,
	}
	for _, t := range f.trees {
		doc.Trees = append(doc.Trees, encodeTree(t))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// LoadForest reads a forest saved by SaveForest, ready to predict.
func LoadForest(r io.Reader) (*RandomForest, error) {
	var doc forestJSON
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("ml: load: %w", err)
	}
	if doc.Format != forestFormat {
		return nil, fmt.Errorf("ml: load: unknown format %q (want %s)", doc.Format, forestFormat)
	}
	if len(doc.Trees) == 0 {
		return nil, fmt.Errorf("ml: load: forest has no trees")
	}
	f := &RandomForest{
		Trees:    len(doc.Trees),
		classes:  doc.Classes,
		features: doc.Features,
	}
	for _, tj := range doc.Trees {
		t, err := decodeTree(tj)
		if err != nil {
			return nil, err
		}
		f.trees = append(f.trees, t)
	}
	return f, nil
}
