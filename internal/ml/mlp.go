package ml

import (
	"math"
)

// MLP is a one-hidden-layer perceptron with tanh activations and a softmax
// output, trained by SGD on cross-entropy. The paper groups it with
// gradient boosting as needing far more data than the 95-sample metadata
// set provides (§4.3).
type MLP struct {
	// Hidden is the hidden layer width; zero means 16.
	Hidden int
	// Epochs is the SGD epoch count; zero means 300.
	Epochs int
	// LearningRate is the SGD step; zero means 0.05.
	LearningRate float64
	// Seed drives weight initialization and shuffling.
	Seed int64

	std     *standardizer
	classes int
	w1      [][]float64 // hidden x input
	b1      []float64
	w2      [][]float64 // classes x hidden
	b2      []float64
}

// Fit implements Classifier.
func (m *MLP) Fit(X [][]float64, y []int) error {
	classes, err := validate(X, y)
	if err != nil {
		return err
	}
	if classes < 2 {
		classes = 2
	}
	if m.Hidden <= 0 {
		m.Hidden = 16
	}
	if m.Epochs <= 0 {
		m.Epochs = 300
	}
	if m.LearningRate == 0 {
		m.LearningRate = 0.05
	}
	m.classes = classes
	m.std = fitStandardizer(X)
	Z := m.std.applyAll(X)
	d := len(Z[0])

	rng := newRNG(m.Seed)
	init := func(rows, cols int) [][]float64 {
		w := make([][]float64, rows)
		scale := math.Sqrt(2 / float64(cols))
		for i := range w {
			w[i] = make([]float64, cols)
			for j := range w[i] {
				w[i][j] = rng.NormFloat64() * scale
			}
		}
		return w
	}
	m.w1 = init(m.Hidden, d)
	m.b1 = make([]float64, m.Hidden)
	m.w2 = init(classes, m.Hidden)
	m.b2 = make([]float64, classes)

	order := make([]int, len(Z))
	for i := range order {
		order[i] = i
	}
	h := make([]float64, m.Hidden)
	out := make([]float64, classes)
	dh := make([]float64, m.Hidden)

	for e := 0; e < m.Epochs; e++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, i := range order {
			x := Z[i]
			// Forward.
			for k := 0; k < m.Hidden; k++ {
				h[k] = math.Tanh(dot(m.w1[k], x) + m.b1[k])
			}
			maxz := math.Inf(-1)
			for c := 0; c < classes; c++ {
				out[c] = dot(m.w2[c], h) + m.b2[c]
				if out[c] > maxz {
					maxz = out[c]
				}
			}
			var sum float64
			for c := range out {
				out[c] = math.Exp(out[c] - maxz)
				sum += out[c]
			}
			for c := range out {
				out[c] /= sum
			}
			// Backward.
			for k := range dh {
				dh[k] = 0
			}
			for c := 0; c < classes; c++ {
				grad := out[c]
				if c == y[i] {
					grad -= 1
				}
				for k := 0; k < m.Hidden; k++ {
					dh[k] += grad * m.w2[c][k]
					m.w2[c][k] -= m.LearningRate * grad * h[k]
				}
				m.b2[c] -= m.LearningRate * grad
			}
			for k := 0; k < m.Hidden; k++ {
				g := dh[k] * (1 - h[k]*h[k])
				for j := range x {
					m.w1[k][j] -= m.LearningRate * g * x[j]
				}
				m.b1[k] -= m.LearningRate * g
			}
		}
	}
	return nil
}

// Predict implements Classifier.
func (m *MLP) Predict(x []float64) int {
	z := m.std.apply(x)
	h := make([]float64, m.Hidden)
	for k := 0; k < m.Hidden; k++ {
		h[k] = math.Tanh(dot(m.w1[k], z) + m.b1[k])
	}
	best, bestV := 0, math.Inf(-1)
	for c := 0; c < m.classes; c++ {
		v := dot(m.w2[c], h) + m.b2[c]
		if v > bestV {
			best, bestV = c, v
		}
	}
	return best
}
