package ml

import (
	"errors"
	"math"
)

// CovarianceMatrix returns the d x d sample covariance of the rows of X.
func CovarianceMatrix(X [][]float64) ([][]float64, error) {
	n := len(X)
	if n < 2 {
		return nil, errors.New("ml: covariance needs at least 2 rows")
	}
	d := len(X[0])
	mean := make([]float64, d)
	for _, row := range X {
		for j, v := range row {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}
	cov := make([][]float64, d)
	for i := range cov {
		cov[i] = make([]float64, d)
	}
	for _, row := range X {
		for i := 0; i < d; i++ {
			di := row[i] - mean[i]
			for j := i; j < d; j++ {
				cov[i][j] += di * (row[j] - mean[j])
			}
		}
	}
	for i := 0; i < d; i++ {
		for j := i; j < d; j++ {
			cov[i][j] /= float64(n - 1)
			cov[j][i] = cov[i][j]
		}
	}
	return cov, nil
}

// CorrelationMatrix returns the d x d Pearson correlation of the rows of X
// — the covariance heat map of Figure 4, scale-free.
func CorrelationMatrix(X [][]float64) ([][]float64, error) {
	cov, err := CovarianceMatrix(X)
	if err != nil {
		return nil, err
	}
	d := len(cov)
	out := make([][]float64, d)
	for i := range out {
		out[i] = make([]float64, d)
	}
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			den := math.Sqrt(cov[i][i] * cov[j][j])
			if den == 0 {
				out[i][j] = 0
				continue
			}
			out[i][j] = cov[i][j] / den
		}
	}
	return out, nil
}

// PCA holds a fitted principal-component basis.
type PCA struct {
	// Components holds the eigenvectors, one per row, sorted by
	// descending eigenvalue.
	Components [][]float64
	// Variances holds the matching eigenvalues.
	Variances []float64
	mean      []float64
}

// FitPCA computes the principal components of X via Jacobi
// eigendecomposition of its covariance matrix. The paper notes PCA
// preprocessing worsened its classifiers — every feature carries signal
// (§3.7).
func FitPCA(X [][]float64) (*PCA, error) {
	cov, err := CovarianceMatrix(X)
	if err != nil {
		return nil, err
	}
	d := len(cov)
	mean := make([]float64, d)
	for _, row := range X {
		for j, v := range row {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(len(X))
	}
	vals, vecs := jacobiEigen(cov)
	// Sort by descending eigenvalue (selection sort over small d).
	order := make([]int, d)
	for i := range order {
		order[i] = i
	}
	for i := 0; i < d; i++ {
		best := i
		for j := i + 1; j < d; j++ {
			if vals[order[j]] > vals[order[best]] {
				best = j
			}
		}
		order[i], order[best] = order[best], order[i]
	}
	p := &PCA{mean: mean}
	for _, k := range order {
		comp := make([]float64, d)
		for r := 0; r < d; r++ {
			comp[r] = vecs[r][k]
		}
		p.Components = append(p.Components, comp)
		p.Variances = append(p.Variances, vals[k])
	}
	return p, nil
}

// Transform projects x onto the first k components.
func (p *PCA) Transform(x []float64, k int) []float64 {
	if k > len(p.Components) {
		k = len(p.Components)
	}
	out := make([]float64, k)
	centered := make([]float64, len(x))
	for j, v := range x {
		centered[j] = v - p.mean[j]
	}
	for c := 0; c < k; c++ {
		out[c] = dot(p.Components[c], centered)
	}
	return out
}

// TransformAll projects every row of X onto the first k components.
func (p *PCA) TransformAll(X [][]float64, k int) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		out[i] = p.Transform(row, k)
	}
	return out
}

// jacobiEigen diagonalizes a symmetric matrix with cyclic Jacobi
// rotations, returning eigenvalues and the matrix of column eigenvectors.
func jacobiEigen(sym [][]float64) ([]float64, [][]float64) {
	n := len(sym)
	a := make([][]float64, n)
	v := make([][]float64, n)
	for i := range a {
		a[i] = append([]float64(nil), sym[i]...)
		v[i] = make([]float64, n)
		v[i][i] = 1
	}
	for sweep := 0; sweep < 100; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += a[i][j] * a[i][j]
			}
		}
		if off < 1e-18 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				if math.Abs(a[p][q]) < 1e-15 {
					continue
				}
				theta := (a[q][q] - a[p][p]) / (2 * a[p][q])
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				for k := 0; k < n; k++ {
					akp, akq := a[k][p], a[k][q]
					a[k][p] = c*akp - s*akq
					a[k][q] = s*akp + c*akq
				}
				for k := 0; k < n; k++ {
					apk, aqk := a[p][k], a[q][k]
					a[p][k] = c*apk - s*aqk
					a[q][k] = s*apk + c*aqk
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v[k][p], v[k][q]
					v[k][p] = c*vkp - s*vkq
					v[k][q] = s*vkp + c*vkq
				}
			}
		}
	}
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = a[i][i]
	}
	return vals, v
}
