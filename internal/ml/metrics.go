package ml

import (
	"fmt"
	"math"
)

// Accuracy returns the fraction of matching labels.
func Accuracy(yTrue, yPred []int) float64 {
	if len(yTrue) == 0 {
		return 0
	}
	hits := 0
	for i := range yTrue {
		if yTrue[i] == yPred[i] {
			hits++
		}
	}
	return float64(hits) / float64(len(yTrue))
}

// F1Binary returns the F1 score treating positive as the positive class.
func F1Binary(yTrue, yPred []int, positive int) float64 {
	var tp, fp, fn float64
	for i := range yTrue {
		switch {
		case yPred[i] == positive && yTrue[i] == positive:
			tp++
		case yPred[i] == positive && yTrue[i] != positive:
			fp++
		case yPred[i] != positive && yTrue[i] == positive:
			fn++
		}
	}
	if tp == 0 {
		return 0
	}
	prec := tp / (tp + fp)
	rec := tp / (tp + fn)
	return 2 * prec * rec / (prec + rec)
}

// MacroF1 returns the unweighted mean of per-class F1 scores over the
// classes present in yTrue — the paper's F1-score accuracy metric.
func MacroF1(yTrue, yPred []int) float64 {
	present := map[int]bool{}
	for _, y := range yTrue {
		present[y] = true
	}
	if len(present) == 0 {
		return 0
	}
	var sum float64
	for c := range present {
		sum += F1Binary(yTrue, yPred, c)
	}
	return sum / float64(len(present))
}

// EvaluateF1 fits a fresh model via construct on the training split and
// returns its macro F1 on the test split.
func EvaluateF1(construct func() Classifier, trainX [][]float64, trainY []int, testX [][]float64, testY []int) (float64, error) {
	model := construct()
	if err := model.Fit(trainX, trainY); err != nil {
		return 0, err
	}
	pred := make([]int, len(testX))
	for i, x := range testX {
		pred[i] = model.Predict(x)
	}
	return MacroF1(testY, pred), nil
}

// StratifiedSplit partitions (X, y) into train and test sets with the
// given train fraction, preserving per-class proportions — the paper's
// "well-balanced samples" with a 60-40 split.
func StratifiedSplit(X [][]float64, y []int, trainFrac float64, seed int64) (trainX [][]float64, trainY []int, testX [][]float64, testY []int, err error) {
	if len(X) != len(y) {
		return nil, nil, nil, nil, fmt.Errorf("ml: %d rows but %d labels", len(X), len(y))
	}
	if trainFrac <= 0 || trainFrac >= 1 {
		return nil, nil, nil, nil, fmt.Errorf("ml: train fraction %v out of (0,1)", trainFrac)
	}
	rng := newRNG(seed)
	byClass := map[int][]int{}
	for i, c := range y {
		byClass[c] = append(byClass[c], i)
	}
	classes := make([]int, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	// Deterministic order over classes.
	for i := 1; i < len(classes); i++ {
		for j := i; j > 0 && classes[j] < classes[j-1]; j-- {
			classes[j], classes[j-1] = classes[j-1], classes[j]
		}
	}
	for _, c := range classes {
		idx := byClass[c]
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		nTrain := int(math.Round(trainFrac * float64(len(idx))))
		if nTrain == len(idx) && len(idx) > 1 {
			nTrain--
		}
		if nTrain == 0 && len(idx) > 1 {
			nTrain = 1
		}
		for k, i := range idx {
			if k < nTrain {
				trainX = append(trainX, X[i])
				trainY = append(trainY, y[i])
			} else {
				testX = append(testX, X[i])
				testY = append(testY, y[i])
			}
		}
	}
	return trainX, trainY, testX, testY, nil
}

// KFold runs k-fold cross-validation, returning the per-fold macro F1
// scores. It is the three-fold validation behind Figure 10's error bars.
func KFold(construct func() Classifier, X [][]float64, y []int, k int, seed int64) ([]float64, error) {
	n := len(X)
	if k < 2 || k > n {
		return nil, fmt.Errorf("ml: k=%d folds infeasible for %d samples", k, n)
	}
	rng := newRNG(seed)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	rng.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })

	scores := make([]float64, 0, k)
	for fold := 0; fold < k; fold++ {
		var trX, teX [][]float64
		var trY, teY []int
		for pos, i := range idx {
			if pos%k == fold {
				teX = append(teX, X[i])
				teY = append(teY, y[i])
			} else {
				trX = append(trX, X[i])
				trY = append(trY, y[i])
			}
		}
		s, err := EvaluateF1(construct, trX, trY, teX, teY)
		if err != nil {
			return nil, err
		}
		scores = append(scores, s)
	}
	return scores, nil
}

// MeanStd returns the mean and standard deviation of xs.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}
