package ml

import (
	"bytes"
	"strings"
	"testing"
)

func TestForestSaveLoadRoundTrip(t *testing.T) {
	X, y := blobs(40, 3, 4)
	f := &RandomForest{Trees: 10, MaxDepth: 5, Seed: 2}
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveForest(&buf, f); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadForest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The loaded forest must predict identically on every training row
	// and on fresh points.
	for i, row := range X {
		if f.Predict(row) != loaded.Predict(row) {
			t.Fatalf("row %d: predictions diverge after round trip", i)
		}
	}
	probe := []float64{1.5, 1.5, 0}
	if f.Predict(probe) != loaded.Predict(probe) {
		t.Error("fresh-point prediction diverges")
	}
	// Importances survive.
	a, b := f.Importance(), loaded.Importance()
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("importance %d: %v != %v", i, a[i], b[i])
		}
	}
}

func TestSaveUnfittedForest(t *testing.T) {
	if err := SaveForest(&bytes.Buffer{}, &RandomForest{}); err == nil {
		t.Error("saving an unfitted forest accepted")
	}
}

func TestLoadForestErrors(t *testing.T) {
	cases := []string{
		"not json",
		`{}`,
		`{"format":"wrong","trees":[]}`,
		`{"format":"credo-random-forest-v1","classes":2,"features":3,"trees":[]}`,
		`{"format":"credo-random-forest-v1","classes":2,"features":3,"trees":[{"classes":2,"features":3}]}`,
		`{"format":"credo-random-forest-v1","classes":2,"features":3,"trees":[{"classes":0,"features":3,"root":{"leaf":true}}]}`,
		`{"format":"credo-random-forest-v1","classes":2,"features":3,"trees":[{"classes":2,"features":3,"root":{"feature":1,"threshold":0.5}}]}`,
	}
	for _, src := range cases {
		if _, err := LoadForest(strings.NewReader(src)); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}
