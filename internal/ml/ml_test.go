package ml

import (
	"math"
	"math/rand"
	"testing"
)

// blobs generates two Gaussian clusters, linearly separable when sep is
// large.
func blobs(n int, sep float64, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, 0, 2*n)
	y := make([]int, 0, 2*n)
	for c := 0; c < 2; c++ {
		cx := float64(c) * sep
		for i := 0; i < n; i++ {
			X = append(X, []float64{cx + rng.NormFloat64(), cx + rng.NormFloat64(), rng.NormFloat64()})
			y = append(y, c)
		}
	}
	return X, y
}

// xorData generates the XOR pattern no linear model can separate.
func xorData(n int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, 0, 4*n)
	y := make([]int, 0, 4*n)
	for q := 0; q < 4; q++ {
		qx, qy := float64(q&1), float64(q>>1)
		label := int(q&1) ^ int(q>>1)
		for i := 0; i < n; i++ {
			X = append(X, []float64{qx*4 + rng.NormFloat64()*0.5, qy*4 + rng.NormFloat64()*0.5})
			y = append(y, label)
		}
	}
	return X, y
}

func constructors() map[string]func() Classifier {
	return map[string]func() Classifier{
		"tree":   func() Classifier { return &DecisionTree{MaxDepth: 6} },
		"forest": func() Classifier { return &RandomForest{} },
		"knn":    func() Classifier { return &KNN{} },
		"nb":     func() Classifier { return &GaussianNB{} },
		"svm":    func() Classifier { return &LinearSVM{} },
		"gbt":    func() Classifier { return &GradientBoosting{} },
		"mlp":    func() Classifier { return &MLP{} },
		"kernel": func() Classifier { return &KernelClassifier{} },
	}
}

func TestAllClassifiersSeparableBlobs(t *testing.T) {
	X, y := blobs(40, 6, 1)
	trX, trY, teX, teY, err := StratifiedSplit(X, y, 0.6, 2)
	if err != nil {
		t.Fatal(err)
	}
	for name, c := range constructors() {
		t.Run(name, func(t *testing.T) {
			f1, err := EvaluateF1(c, trX, trY, teX, teY)
			if err != nil {
				t.Fatal(err)
			}
			if f1 < 0.9 {
				t.Errorf("%s F1 = %.3f on separable blobs, want >= 0.9", name, f1)
			}
		})
	}
}

func TestNonlinearModelsSolveXOR(t *testing.T) {
	X, y := xorData(40, 3)
	trX, trY, teX, teY, err := StratifiedSplit(X, y, 0.6, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"tree", "forest", "knn", "gbt", "mlp", "kernel"} {
		f1, err := EvaluateF1(constructors()[name], trX, trY, teX, teY)
		if err != nil {
			t.Fatal(err)
		}
		if f1 < 0.85 {
			t.Errorf("%s F1 = %.3f on XOR, want >= 0.85", name, f1)
		}
	}
	// The linear SVM cannot separate XOR (§4.3's separability argument).
	f1, err := EvaluateF1(constructors()["svm"], trX, trY, teX, teY)
	if err != nil {
		t.Fatal(err)
	}
	if f1 > 0.8 {
		t.Errorf("linear SVM F1 = %.3f on XOR; expected failure (< 0.8)", f1)
	}
}

func TestFitValidation(t *testing.T) {
	for name, c := range constructors() {
		model := c()
		if err := model.Fit(nil, nil); err == nil {
			t.Errorf("%s accepted empty training set", name)
		}
		if err := model.Fit([][]float64{{1, 2}}, []int{0, 1}); err == nil {
			t.Errorf("%s accepted mismatched labels", name)
		}
		if err := model.Fit([][]float64{{1, 2}, {1}}, []int{0, 1}); err == nil {
			t.Errorf("%s accepted ragged rows", name)
		}
	}
	// Binary-only models reject multi-class labels.
	for _, name := range []string{"svm", "gbt", "kernel"} {
		model := constructors()[name]()
		X := [][]float64{{0, 0}, {1, 1}, {2, 2}}
		if err := model.Fit(X, []int{0, 1, 2}); err == nil {
			t.Errorf("%s accepted 3 classes", name)
		}
	}
}

func TestDecisionTreeDepthLimit(t *testing.T) {
	X, y := xorData(30, 5)
	tree := &DecisionTree{MaxDepth: 1}
	if err := tree.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	depth := 0
	n := tree.root
	for !n.leaf {
		depth++
		n = n.left
	}
	if depth > 1 {
		t.Errorf("tree depth %d exceeds MaxDepth 1", depth)
	}
}

func TestTreeImportanceAndDump(t *testing.T) {
	// Only feature 0 is informative.
	rng := rand.New(rand.NewSource(7))
	var X [][]float64
	var y []int
	for i := 0; i < 100; i++ {
		v := rng.Float64()
		X = append(X, []float64{v, rng.Float64()})
		if v > 0.5 {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	tree := &DecisionTree{MaxDepth: 3}
	if err := tree.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	imp := tree.Importance()
	if imp[0] < 0.9 {
		t.Errorf("feature 0 importance = %.3f, want > 0.9", imp[0])
	}
	dump := tree.Dump([]string{"signal", "noise"}, []string{"lo", "hi"})
	if len(dump) == 0 {
		t.Fatal("empty dump")
	}
	if want := "if signal <= "; len(dump) < len(want) || dump[:len(want)] != want {
		t.Errorf("dump does not open with the informative split: %q", dump)
	}
}

func TestForestImportanceNormalized(t *testing.T) {
	X, y := blobs(30, 4, 9)
	f := &RandomForest{}
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	imp := f.Importance()
	var sum float64
	for _, v := range imp {
		if v < 0 {
			t.Errorf("negative importance %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("importances sum to %v, want 1", sum)
	}
}

func TestForestBeatsTreeOnNoisyData(t *testing.T) {
	// With noisy, overlapping blobs the ensemble should be at least as
	// good as a single deep tree (the paper's §4.3 refinement).
	X, y := blobs(60, 1.6, 11)
	trX, trY, teX, teY, err := StratifiedSplit(X, y, 0.6, 12)
	if err != nil {
		t.Fatal(err)
	}
	treeF1, err := EvaluateF1(func() Classifier { return &DecisionTree{MaxDepth: 8} }, trX, trY, teX, teY)
	if err != nil {
		t.Fatal(err)
	}
	forestF1, err := EvaluateF1(func() Classifier { return &RandomForest{Trees: 25, MaxDepth: 8} }, trX, trY, teX, teY)
	if err != nil {
		t.Fatal(err)
	}
	if forestF1+0.05 < treeF1 {
		t.Errorf("forest F1 %.3f clearly below tree %.3f", forestF1, treeF1)
	}
}

// TestPropertyF1Bounds: F1 and accuracy stay in [0,1] for arbitrary label
// vectors.
func TestPropertyF1Bounds(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(30)
		yt := make([]int, n)
		yp := make([]int, n)
		for i := range yt {
			yt[i] = rng.Intn(3)
			yp[i] = rng.Intn(3)
		}
		for _, v := range []float64{Accuracy(yt, yp), MacroF1(yt, yp), F1Binary(yt, yp, 1)} {
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("metric out of range: %v (yt=%v yp=%v)", v, yt, yp)
			}
		}
	}
}

// TestPropertySplitPreservesRows: stratified splits never lose or
// duplicate samples.
func TestPropertySplitPreservesRows(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	for trial := 0; trial < 50; trial++ {
		n := 4 + rng.Intn(60)
		X := make([][]float64, n)
		y := make([]int, n)
		for i := range X {
			X[i] = []float64{float64(i)}
			y[i] = rng.Intn(2)
		}
		frac := 0.2 + 0.6*rng.Float64()
		trX, _, teX, _, err := StratifiedSplit(X, y, frac, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		seen := map[float64]int{}
		for _, r := range trX {
			seen[r[0]]++
		}
		for _, r := range teX {
			seen[r[0]]++
		}
		if len(seen) != n {
			t.Fatalf("split covers %d of %d rows", len(seen), n)
		}
		for v, c := range seen {
			if c != 1 {
				t.Fatalf("row %v appears %d times", v, c)
			}
		}
	}
}
