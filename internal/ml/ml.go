// Package ml is the from-scratch machine-learning substrate behind Credo's
// implementation classifier (§3.7, §4.3): CART decision trees, random
// forests, Gaussian naive Bayes, k-nearest neighbours, a linear SVM,
// gradient-boosted trees, a multi-layer perceptron and a kernel
// (Gaussian-process-style) classifier, together with the metrics and
// resampling utilities the paper's evaluation uses — F1 scoring,
// stratified train/test splits and k-fold cross-validation — plus the
// covariance and PCA analyses of Figure 4.
package ml

import (
	"errors"
	"fmt"
	"math/rand"
)

// Classifier is a supervised model over dense float features and integer
// class labels.
type Classifier interface {
	// Fit trains the model on rows X with labels y (one label per row).
	Fit(X [][]float64, y []int) error
	// Predict returns the predicted label for one row.
	Predict(x []float64) int
}

// validate checks the common preconditions of Fit.
func validate(X [][]float64, y []int) (classes int, err error) {
	if len(X) == 0 {
		return 0, errors.New("ml: empty training set")
	}
	if len(X) != len(y) {
		return 0, fmt.Errorf("ml: %d rows but %d labels", len(X), len(y))
	}
	d := len(X[0])
	if d == 0 {
		return 0, errors.New("ml: rows have no features")
	}
	maxc := 0
	for i, row := range X {
		if len(row) != d {
			return 0, fmt.Errorf("ml: row %d has %d features, want %d", i, len(row), d)
		}
		if y[i] < 0 {
			return 0, fmt.Errorf("ml: negative label %d", y[i])
		}
		if y[i] > maxc {
			maxc = y[i]
		}
	}
	return maxc + 1, nil
}

// majority returns the most frequent label in counts.
func majority(counts []int) int {
	best, bestN := 0, -1
	for c, n := range counts {
		if n > bestN {
			best, bestN = c, n
		}
	}
	return best
}

// bincount tallies labels into a slice of length classes.
func bincount(y []int, idx []int, classes int) []int {
	counts := make([]int, classes)
	for _, i := range idx {
		counts[y[i]]++
	}
	return counts
}

// standardizer z-scores features using training statistics; shared by the
// SVM, MLP and kernel classifiers.
type standardizer struct {
	mean, std []float64
}

func fitStandardizer(X [][]float64) *standardizer {
	d := len(X[0])
	s := &standardizer{mean: make([]float64, d), std: make([]float64, d)}
	for _, row := range X {
		for j, v := range row {
			s.mean[j] += v
		}
	}
	for j := range s.mean {
		s.mean[j] /= float64(len(X))
	}
	for _, row := range X {
		for j, v := range row {
			dv := v - s.mean[j]
			s.std[j] += dv * dv
		}
	}
	for j := range s.std {
		s.std[j] = sqrt(s.std[j] / float64(len(X)))
		if s.std[j] == 0 {
			s.std[j] = 1
		}
	}
	return s
}

func (s *standardizer) apply(x []float64) []float64 {
	out := make([]float64, len(x))
	for j, v := range x {
		out[j] = (v - s.mean[j]) / s.std[j]
	}
	return out
}

func (s *standardizer) applyAll(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		out[i] = s.apply(row)
	}
	return out
}

// newRNG builds a deterministic generator from a seed.
func newRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
