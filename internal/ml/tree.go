package ml

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
)

func sqrt(x float64) float64 { return math.Sqrt(x) }

// DecisionTree is a CART classifier with gini-impurity splits — the
// classifier of the paper's Figure 6 (max depth 2) and the base learner of
// its random forest.
type DecisionTree struct {
	// MaxDepth bounds the tree depth; zero means 6.
	MaxDepth int
	// MinLeaf is the minimum samples per leaf; zero means 1.
	MinLeaf int
	// MaxFeatures is the number of features examined per split; zero
	// means all (the random forest passes √d).
	MaxFeatures int
	// Seed drives the per-split feature subsampling when MaxFeatures is
	// in effect.
	Seed int64

	root       *treeNode
	classes    int
	features   int
	importance []float64
}

type treeNode struct {
	feature   int
	threshold float64
	left      *treeNode
	right     *treeNode
	leaf      bool
	pred      int
	counts    []int
}

// Fit implements Classifier.
func (t *DecisionTree) Fit(X [][]float64, y []int) error {
	classes, err := validate(X, y)
	if err != nil {
		return err
	}
	t.classes = classes
	t.features = len(X[0])
	t.importance = make([]float64, t.features)
	if t.MaxDepth == 0 {
		t.MaxDepth = 6
	}
	if t.MinLeaf <= 0 {
		t.MinLeaf = 1
	}
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	rng := newRNG(t.Seed)
	t.root = t.build(X, y, idx, 0, rng)
	return nil
}

func gini(counts []int, total int) float64 {
	if total == 0 {
		return 0
	}
	g := 1.0
	for _, c := range counts {
		p := float64(c) / float64(total)
		g -= p * p
	}
	return g
}

func (t *DecisionTree) build(X [][]float64, y []int, idx []int, depth int, rng *rand.Rand) *treeNode {
	counts := bincount(y, idx, t.classes)
	node := &treeNode{counts: counts, pred: majority(counts), leaf: true}
	if depth >= t.MaxDepth || len(idx) < 2*t.MinLeaf || gini(counts, len(idx)) == 0 {
		return node
	}

	feats := t.candidateFeatures(rng)
	bestGain := 0.0
	bestFeat, bestThr := -1, 0.0
	parentImp := gini(counts, len(idx))

	vals := make([]float64, len(idx))
	order := make([]int, len(idx))
	leftCounts := make([]int, t.classes)
	for _, f := range feats {
		for k, i := range idx {
			vals[k] = X[i][f]
			order[k] = i
		}
		sort.Sort(&byFeature{vals: vals, idx: order})
		for c := range leftCounts {
			leftCounts[c] = 0
		}
		nLeft := 0
		for k := 0; k < len(order)-1; k++ {
			leftCounts[y[order[k]]]++
			nLeft++
			if vals[k] == vals[k+1] {
				continue
			}
			nRight := len(order) - nLeft
			if nLeft < t.MinLeaf || nRight < t.MinLeaf {
				continue
			}
			rightCounts := make([]int, t.classes)
			for c := range rightCounts {
				rightCounts[c] = counts[c] - leftCounts[c]
			}
			imp := (float64(nLeft)*gini(leftCounts, nLeft) + float64(nRight)*gini(rightCounts, nRight)) / float64(len(idx))
			if gain := parentImp - imp; gain > bestGain+1e-12 {
				bestGain = gain
				bestFeat = f
				bestThr = (vals[k] + vals[k+1]) / 2
			}
		}
	}
	if bestFeat < 0 {
		return node
	}

	var leftIdx, rightIdx []int
	for _, i := range idx {
		if X[i][bestFeat] <= bestThr {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	if len(leftIdx) == 0 || len(rightIdx) == 0 {
		return node
	}
	t.importance[bestFeat] += bestGain * float64(len(idx))
	node.leaf = false
	node.feature = bestFeat
	node.threshold = bestThr
	node.left = t.build(X, y, leftIdx, depth+1, rng)
	node.right = t.build(X, y, rightIdx, depth+1, rng)
	return node
}

func (t *DecisionTree) candidateFeatures(rng *rand.Rand) []int {
	all := make([]int, t.features)
	for i := range all {
		all[i] = i
	}
	if t.MaxFeatures <= 0 || t.MaxFeatures >= t.features {
		return all
	}
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	return all[:t.MaxFeatures]
}

// Predict implements Classifier.
func (t *DecisionTree) Predict(x []float64) int {
	n := t.root
	if n == nil {
		return 0
	}
	for !n.leaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.pred
}

// Importance returns the normalized impurity-decrease importance of each
// feature (Figure 5's per-feature contributions).
func (t *DecisionTree) Importance() []float64 {
	out := append([]float64(nil), t.importance...)
	var sum float64
	for _, v := range out {
		sum += v
	}
	if sum > 0 {
		for i := range out {
			out[i] /= sum
		}
	}
	return out
}

// Dump renders the tree structure with the given feature and class names —
// the textual equivalent of the paper's Figure 6.
func (t *DecisionTree) Dump(featureNames, classNames []string) string {
	var b strings.Builder
	var walk func(n *treeNode, depth int)
	walk = func(n *treeNode, depth int) {
		indent := strings.Repeat("  ", depth)
		if n.leaf {
			fmt.Fprintf(&b, "%spredict %s (samples=%v)\n", indent, className(classNames, n.pred), n.counts)
			return
		}
		fmt.Fprintf(&b, "%sif %s <= %.4g:\n", indent, featureName(featureNames, n.feature), n.threshold)
		walk(n.left, depth+1)
		fmt.Fprintf(&b, "%selse:\n", indent)
		walk(n.right, depth+1)
	}
	if t.root != nil {
		walk(t.root, 0)
	}
	return b.String()
}

func featureName(names []string, i int) string {
	if i < len(names) {
		return names[i]
	}
	return fmt.Sprintf("f%d", i)
}

func className(names []string, i int) string {
	if i < len(names) {
		return names[i]
	}
	return fmt.Sprintf("class%d", i)
}

type byFeature struct {
	vals []float64
	idx  []int
}

func (s *byFeature) Len() int { return len(s.vals) }
func (s *byFeature) Less(i, j int) bool {
	return s.vals[i] < s.vals[j]
}
func (s *byFeature) Swap(i, j int) {
	s.vals[i], s.vals[j] = s.vals[j], s.vals[i]
	s.idx[i], s.idx[j] = s.idx[j], s.idx[i]
}
