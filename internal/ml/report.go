package ml

import (
	"fmt"
	"strings"
)

// ConfusionMatrix returns counts[t][p] = samples of true class t predicted
// as class p, sized by the largest label seen.
func ConfusionMatrix(yTrue, yPred []int) [][]int {
	classes := 0
	for i := range yTrue {
		if yTrue[i]+1 > classes {
			classes = yTrue[i] + 1
		}
		if yPred[i]+1 > classes {
			classes = yPred[i] + 1
		}
	}
	m := make([][]int, classes)
	for i := range m {
		m[i] = make([]int, classes)
	}
	for i := range yTrue {
		m[yTrue[i]][yPred[i]]++
	}
	return m
}

// PrecisionRecall returns the per-class precision and recall.
func PrecisionRecall(yTrue, yPred []int) (precision, recall []float64) {
	m := ConfusionMatrix(yTrue, yPred)
	n := len(m)
	precision = make([]float64, n)
	recall = make([]float64, n)
	for c := 0; c < n; c++ {
		var tp, colSum, rowSum int
		for o := 0; o < n; o++ {
			colSum += m[o][c]
			rowSum += m[c][o]
		}
		tp = m[c][c]
		if colSum > 0 {
			precision[c] = float64(tp) / float64(colSum)
		}
		if rowSum > 0 {
			recall[c] = float64(tp) / float64(rowSum)
		}
	}
	return precision, recall
}

// ClassificationReport renders per-class precision/recall/F1 plus accuracy
// and macro F1, in the style of scikit-learn's report (the library the
// paper's classifier study uses).
func ClassificationReport(yTrue, yPred []int, classNames []string) string {
	precision, recall := PrecisionRecall(yTrue, yPred)
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %10s %10s %10s %10s\n", "class", "precision", "recall", "f1", "support")
	m := ConfusionMatrix(yTrue, yPred)
	for c := range precision {
		var support int
		for o := range m[c] {
			support += m[c][o]
		}
		f1 := 0.0
		if precision[c]+recall[c] > 0 {
			f1 = 2 * precision[c] * recall[c] / (precision[c] + recall[c])
		}
		fmt.Fprintf(&b, "%-12s %10.3f %10.3f %10.3f %10d\n",
			className(classNames, c), precision[c], recall[c], f1, support)
	}
	fmt.Fprintf(&b, "%-12s %10.3f\n", "accuracy", Accuracy(yTrue, yPred))
	fmt.Fprintf(&b, "%-12s %10.3f\n", "macro F1", MacroF1(yTrue, yPred))
	return b.String()
}
