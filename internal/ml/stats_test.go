package ml

import (
	"math"
	"math/rand"
	"testing"
)

func TestF1Binary(t *testing.T) {
	yTrue := []int{1, 1, 0, 0, 1}
	yPred := []int{1, 0, 0, 1, 1}
	// tp=2 fp=1 fn=1 -> precision 2/3, recall 2/3, F1 2/3.
	if got := F1Binary(yTrue, yPred, 1); math.Abs(got-2.0/3) > 1e-9 {
		t.Errorf("F1 = %v, want 2/3", got)
	}
	if got := F1Binary([]int{0, 0}, []int{0, 0}, 1); got != 0 {
		t.Errorf("no positives F1 = %v, want 0", got)
	}
	perfect := []int{1, 0, 1}
	if got := F1Binary(perfect, perfect, 1); got != 1 {
		t.Errorf("perfect F1 = %v, want 1", got)
	}
}

func TestMacroF1AndAccuracy(t *testing.T) {
	yTrue := []int{0, 0, 1, 1}
	yPred := []int{0, 1, 1, 1}
	acc := Accuracy(yTrue, yPred)
	if acc != 0.75 {
		t.Errorf("accuracy = %v, want 0.75", acc)
	}
	m := MacroF1(yTrue, yPred)
	// class0: tp=1 fp=0 fn=1 -> F1 2/3; class1: tp=2 fp=1 fn=0 -> F1 0.8.
	want := (2.0/3 + 0.8) / 2
	if math.Abs(m-want) > 1e-9 {
		t.Errorf("macro F1 = %v, want %v", m, want)
	}
}

func TestStratifiedSplitBalance(t *testing.T) {
	var X [][]float64
	var y []int
	for i := 0; i < 100; i++ {
		X = append(X, []float64{float64(i)})
		if i < 70 {
			y = append(y, 0)
		} else {
			y = append(y, 1)
		}
	}
	trX, trY, teX, teY, err := StratifiedSplit(X, y, 0.6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(trX) != len(trY) || len(teX) != len(teY) {
		t.Fatal("length mismatch")
	}
	if len(trX)+len(teX) != 100 {
		t.Fatalf("split lost rows: %d + %d", len(trX), len(teX))
	}
	count := func(ys []int, c int) int {
		n := 0
		for _, v := range ys {
			if v == c {
				n++
			}
		}
		return n
	}
	if got := count(trY, 0); got != 42 {
		t.Errorf("train class 0 = %d, want 42 (60%% of 70)", got)
	}
	if got := count(trY, 1); got != 18 {
		t.Errorf("train class 1 = %d, want 18 (60%% of 30)", got)
	}
	if _, _, _, _, err := StratifiedSplit(X, y, 1.5, 0); err == nil {
		t.Error("accepted invalid fraction")
	}
	if _, _, _, _, err := StratifiedSplit(X, y[:10], 0.6, 0); err == nil {
		t.Error("accepted mismatched lengths")
	}
}

func TestKFold(t *testing.T) {
	X, y := blobs(30, 5, 8)
	scores, err := KFold(func() Classifier { return &DecisionTree{MaxDepth: 4} }, X, y, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 3 {
		t.Fatalf("got %d folds, want 3", len(scores))
	}
	mean, std := MeanStd(scores)
	if mean < 0.9 {
		t.Errorf("mean F1 = %.3f on separable data", mean)
	}
	if std < 0 {
		t.Errorf("negative std %v", std)
	}
	if _, err := KFold(func() Classifier { return &DecisionTree{} }, X, y, 1, 1); err == nil {
		t.Error("accepted k=1")
	}
}

func TestCovarianceAndCorrelation(t *testing.T) {
	// y = 2x exactly: correlation 1, covariance 2*var(x).
	var X [][]float64
	for i := 0; i < 50; i++ {
		x := float64(i)
		X = append(X, []float64{x, 2 * x, 0})
	}
	cov, err := CovarianceMatrix(X)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cov[0][1]-2*cov[0][0]) > 1e-9 {
		t.Errorf("cov(x,2x) = %v, want %v", cov[0][1], 2*cov[0][0])
	}
	corr, err := CorrelationMatrix(X)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(corr[0][1]-1) > 1e-9 {
		t.Errorf("corr(x,2x) = %v, want 1", corr[0][1])
	}
	if corr[2][2] != 0 {
		t.Errorf("constant feature self-correlation = %v, want 0 fallback", corr[2][2])
	}
	if _, err := CovarianceMatrix([][]float64{{1}}); err == nil {
		t.Error("accepted single-row covariance")
	}
}

func TestPCARecoversDominantDirection(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var X [][]float64
	for i := 0; i < 200; i++ {
		v := rng.NormFloat64() * 10
		X = append(X, []float64{v, v + rng.NormFloat64()*0.1, rng.NormFloat64() * 0.1})
	}
	p, err := FitPCA(X)
	if err != nil {
		t.Fatal(err)
	}
	if p.Variances[0] < 100 {
		t.Errorf("first eigenvalue = %v, want >> 100", p.Variances[0])
	}
	if p.Variances[0] < p.Variances[1] || p.Variances[1] < p.Variances[2] {
		t.Error("eigenvalues not sorted descending")
	}
	// First component points along (1,1,0)/√2.
	c := p.Components[0]
	if math.Abs(math.Abs(c[0])-math.Abs(c[1])) > 0.05 || math.Abs(c[2]) > 0.1 {
		t.Errorf("first component = %v, want ≈ ±(0.71, 0.71, 0)", c)
	}
	// Projection preserves variance in the first component.
	Z := p.TransformAll(X, 2)
	if len(Z) != len(X) || len(Z[0]) != 2 {
		t.Fatalf("transform shape %dx%d", len(Z), len(Z[0]))
	}
}

func TestJacobiEigenIdentity(t *testing.T) {
	vals, vecs := jacobiEigen([][]float64{{3, 0}, {0, 7}})
	if !(vals[0] == 3 && vals[1] == 7) && !(vals[0] == 7 && vals[1] == 3) {
		t.Errorf("eigenvalues = %v, want {3, 7}", vals)
	}
	if math.Abs(math.Abs(vecs[0][0])-1) > 1e-9 && math.Abs(math.Abs(vecs[0][1])-1) > 1e-9 {
		t.Errorf("eigenvectors not axis-aligned: %v", vecs)
	}
}

func TestSolveLinear(t *testing.T) {
	A := [][]float64{{2, 1}, {1, 3}}
	x, err := solveLinear(A, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-9 || math.Abs(x[1]-3) > 1e-9 {
		t.Errorf("solution = %v, want [1 3]", x)
	}
	if _, err := solveLinear([][]float64{{0, 0}, {0, 0}}, []float64{1, 1}); err == nil {
		t.Error("accepted singular system")
	}
}
