package ml

import (
	"errors"
	"math"
	"sort"
)

// KNN is a k-nearest-neighbours classifier over z-scored features. The
// paper notes it "only excels when the features can yield entirely
// separable clusters" (§4.3).
type KNN struct {
	// K is the neighbourhood size; zero means 5.
	K int

	std     *standardizer
	X       [][]float64
	y       []int
	classes int
}

// Fit implements Classifier.
func (k *KNN) Fit(X [][]float64, y []int) error {
	classes, err := validate(X, y)
	if err != nil {
		return err
	}
	if k.K <= 0 {
		k.K = 5
	}
	k.classes = classes
	k.std = fitStandardizer(X)
	k.X = k.std.applyAll(X)
	k.y = append([]int(nil), y...)
	return nil
}

// Predict implements Classifier.
func (k *KNN) Predict(x []float64) int {
	q := k.std.apply(x)
	type nd struct {
		d float64
		y int
	}
	ds := make([]nd, len(k.X))
	for i, row := range k.X {
		var d float64
		for j := range row {
			dv := row[j] - q[j]
			d += dv * dv
		}
		ds[i] = nd{d, k.y[i]}
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].d < ds[j].d })
	kk := k.K
	if kk > len(ds) {
		kk = len(ds)
	}
	votes := make([]int, k.classes)
	for _, n := range ds[:kk] {
		votes[n.y]++
	}
	return majority(votes)
}

// GaussianNB is a Gaussian naive Bayes classifier. The paper observes its
// independence assumption is violated by the interrelated graph features
// (§4.3).
type GaussianNB struct {
	classes  int
	priors   []float64
	mean     [][]float64
	variance [][]float64
}

// Fit implements Classifier.
func (g *GaussianNB) Fit(X [][]float64, y []int) error {
	classes, err := validate(X, y)
	if err != nil {
		return err
	}
	g.classes = classes
	d := len(X[0])
	g.priors = make([]float64, classes)
	g.mean = make([][]float64, classes)
	g.variance = make([][]float64, classes)
	counts := make([]int, classes)
	for c := range g.mean {
		g.mean[c] = make([]float64, d)
		g.variance[c] = make([]float64, d)
	}
	for i, row := range X {
		c := y[i]
		counts[c]++
		for j, v := range row {
			g.mean[c][j] += v
		}
	}
	for c := 0; c < classes; c++ {
		if counts[c] == 0 {
			continue
		}
		for j := range g.mean[c] {
			g.mean[c][j] /= float64(counts[c])
		}
	}
	for i, row := range X {
		c := y[i]
		for j, v := range row {
			dv := v - g.mean[c][j]
			g.variance[c][j] += dv * dv
		}
	}
	for c := 0; c < classes; c++ {
		g.priors[c] = float64(counts[c]) / float64(len(X))
		if counts[c] == 0 {
			continue
		}
		for j := range g.variance[c] {
			g.variance[c][j] = g.variance[c][j]/float64(counts[c]) + 1e-9
		}
	}
	return nil
}

// Predict implements Classifier.
func (g *GaussianNB) Predict(x []float64) int {
	best, bestLL := 0, math.Inf(-1)
	for c := 0; c < g.classes; c++ {
		if g.priors[c] == 0 {
			continue
		}
		ll := math.Log(g.priors[c])
		for j, v := range x {
			dv := v - g.mean[c][j]
			ll += -0.5*math.Log(2*math.Pi*g.variance[c][j]) - dv*dv/(2*g.variance[c][j])
		}
		if ll > bestLL {
			best, bestLL = c, ll
		}
	}
	return best
}

// LinearSVM is a binary soft-margin SVM trained with SGD on the hinge
// loss over z-scored features. The paper finds the heavily normalized
// ratio features leave its remapping little to exploit (§4.3).
type LinearSVM struct {
	// Epochs is the SGD epoch count; zero means 200.
	Epochs int
	// Lambda is the L2 regularization weight; zero means 1e-3.
	Lambda float64
	// Seed drives sample shuffling.
	Seed int64

	std *standardizer
	w   []float64
	b   float64
}

// Fit implements Classifier. Labels must be binary {0, 1}.
func (s *LinearSVM) Fit(X [][]float64, y []int) error {
	classes, err := validate(X, y)
	if err != nil {
		return err
	}
	if classes > 2 {
		return errors.New("ml: LinearSVM supports binary labels only")
	}
	if s.Epochs <= 0 {
		s.Epochs = 200
	}
	if s.Lambda == 0 {
		s.Lambda = 1e-3
	}
	s.std = fitStandardizer(X)
	Z := s.std.applyAll(X)
	d := len(Z[0])
	s.w = make([]float64, d)
	s.b = 0
	rng := newRNG(s.Seed)
	order := make([]int, len(Z))
	for i := range order {
		order[i] = i
	}
	step := 0
	for e := 0; e < s.Epochs; e++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, i := range order {
			step++
			eta := 1 / (s.Lambda * float64(step+10))
			yi := float64(2*y[i] - 1)
			margin := yi * (dot(s.w, Z[i]) + s.b)
			for j := range s.w {
				s.w[j] -= eta * s.Lambda * s.w[j]
			}
			if margin < 1 {
				for j := range s.w {
					s.w[j] += eta * yi * Z[i][j]
				}
				s.b += eta * yi
			}
		}
	}
	return nil
}

// Predict implements Classifier.
func (s *LinearSVM) Predict(x []float64) int {
	if dot(s.w, s.std.apply(x))+s.b >= 0 {
		return 1
	}
	return 0
}

func dot(a, b []float64) float64 {
	var sum float64
	for i := range a {
		sum += a[i] * b[i]
	}
	return sum
}

// KernelClassifier is an RBF kernel regularized-least-squares classifier —
// the Gaussian-process-regression-as-classifier stand-in for scikit-learn's
// GaussianProcessClassifier in Figure 10. Training solves
// (K + λI)α = y± by Gaussian elimination, which is comfortable at the
// paper's 95-sample scale.
type KernelClassifier struct {
	// Gamma is the RBF width; zero means 1/d.
	Gamma float64
	// Lambda is the ridge term; zero means 1e-2.
	Lambda float64

	std   *standardizer
	X     [][]float64
	alpha []float64
}

// Fit implements Classifier. Labels must be binary {0, 1}.
func (k *KernelClassifier) Fit(X [][]float64, y []int) error {
	classes, err := validate(X, y)
	if err != nil {
		return err
	}
	if classes > 2 {
		return errors.New("ml: KernelClassifier supports binary labels only")
	}
	if k.Lambda == 0 {
		k.Lambda = 1e-2
	}
	if k.Gamma == 0 {
		k.Gamma = 1 / float64(len(X[0]))
	}
	k.std = fitStandardizer(X)
	k.X = k.std.applyAll(X)
	n := len(k.X)
	// Assemble K + λI and the signed target.
	A := make([][]float64, n)
	bvec := make([]float64, n)
	for i := 0; i < n; i++ {
		A[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			A[i][j] = k.rbf(k.X[i], k.X[j])
		}
		A[i][i] += k.Lambda
		bvec[i] = float64(2*y[i] - 1)
	}
	alpha, err := solveLinear(A, bvec)
	if err != nil {
		return err
	}
	k.alpha = alpha
	return nil
}

func (k *KernelClassifier) rbf(a, b []float64) float64 {
	var d float64
	for i := range a {
		dv := a[i] - b[i]
		d += dv * dv
	}
	return math.Exp(-k.Gamma * d)
}

// Predict implements Classifier.
func (k *KernelClassifier) Predict(x []float64) int {
	q := k.std.apply(x)
	var f float64
	for i, row := range k.X {
		f += k.alpha[i] * k.rbf(row, q)
	}
	if f >= 0 {
		return 1
	}
	return 0
}

// solveLinear solves Ax = b by Gaussian elimination with partial pivoting.
// A is modified in place.
func solveLinear(A [][]float64, b []float64) ([]float64, error) {
	n := len(A)
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(A[r][col]) > math.Abs(A[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(A[pivot][col]) < 1e-12 {
			return nil, errors.New("ml: singular system")
		}
		A[col], A[pivot] = A[pivot], A[col]
		b[col], b[pivot] = b[pivot], b[col]
		inv := 1 / A[col][col]
		for r := col + 1; r < n; r++ {
			f := A[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				A[r][c] -= f * A[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for c := r + 1; c < n; c++ {
			sum -= A[r][c] * x[c]
		}
		x[r] = sum / A[r][r]
	}
	return x, nil
}
