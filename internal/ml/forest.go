package ml

import "math"

// RandomForest is a bagged ensemble of CART trees with per-split feature
// subsampling. The paper's tuned configuration is a max depth of 6 and 14
// estimators (§3.7, §4.3).
type RandomForest struct {
	// Trees is the estimator count; zero means 14.
	Trees int
	// MaxDepth bounds each tree; zero means 6.
	MaxDepth int
	// Seed drives bootstrapping and feature subsampling.
	Seed int64

	trees    []*DecisionTree
	features int
	classes  int
}

// Fit implements Classifier.
func (f *RandomForest) Fit(X [][]float64, y []int) error {
	classes, err := validate(X, y)
	if err != nil {
		return err
	}
	f.classes = classes
	f.features = len(X[0])
	if f.Trees <= 0 {
		f.Trees = 14
	}
	if f.MaxDepth <= 0 {
		f.MaxDepth = 6
	}
	maxFeat := int(math.Ceil(math.Sqrt(float64(f.features))))
	rng := newRNG(f.Seed)
	f.trees = make([]*DecisionTree, f.Trees)
	n := len(X)
	for t := range f.trees {
		// Bootstrap sample with replacement.
		bx := make([][]float64, n)
		by := make([]int, n)
		for i := range bx {
			j := rng.Intn(n)
			bx[i] = X[j]
			by[i] = y[j]
		}
		tree := &DecisionTree{MaxDepth: f.MaxDepth, MaxFeatures: maxFeat, Seed: rng.Int63()}
		if err := tree.Fit(bx, by); err != nil {
			return err
		}
		f.trees[t] = tree
	}
	return nil
}

// Predict implements Classifier by majority vote.
func (f *RandomForest) Predict(x []float64) int {
	votes := make([]int, f.classes)
	for _, t := range f.trees {
		votes[t.Predict(x)]++
	}
	return majority(votes)
}

// Importance returns the forest's normalized mean impurity-decrease
// importance per feature — the percent contributions of Figure 5.
func (f *RandomForest) Importance() []float64 {
	out := make([]float64, f.features)
	for _, t := range f.trees {
		for j, v := range t.Importance() {
			out[j] += v
		}
	}
	var sum float64
	for _, v := range out {
		sum += v
	}
	if sum > 0 {
		for j := range out {
			out[j] /= sum
		}
	}
	return out
}
