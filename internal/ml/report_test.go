package ml

import (
	"math"
	"strings"
	"testing"
)

func TestConfusionMatrix(t *testing.T) {
	yTrue := []int{0, 0, 1, 1, 1}
	yPred := []int{0, 1, 1, 1, 0}
	m := ConfusionMatrix(yTrue, yPred)
	want := [][]int{{1, 1}, {1, 2}}
	for i := range want {
		for j := range want[i] {
			if m[i][j] != want[i][j] {
				t.Errorf("m[%d][%d] = %d, want %d", i, j, m[i][j], want[i][j])
			}
		}
	}
}

func TestPrecisionRecall(t *testing.T) {
	yTrue := []int{0, 0, 1, 1, 1}
	yPred := []int{0, 1, 1, 1, 0}
	p, r := PrecisionRecall(yTrue, yPred)
	// class 1: tp=2, predicted 3, actual 3 -> precision 2/3, recall 2/3.
	if math.Abs(p[1]-2.0/3) > 1e-9 || math.Abs(r[1]-2.0/3) > 1e-9 {
		t.Errorf("class 1 p/r = %v/%v, want 2/3", p[1], r[1])
	}
	if math.Abs(p[0]-0.5) > 1e-9 || math.Abs(r[0]-0.5) > 1e-9 {
		t.Errorf("class 0 p/r = %v/%v, want 0.5", p[0], r[0])
	}
	// Degenerate: a class never predicted gets precision 0 without NaN.
	p, r = PrecisionRecall([]int{0, 1}, []int{0, 0})
	if p[1] != 0 || r[1] != 0 {
		t.Errorf("absent class p/r = %v/%v, want 0/0", p[1], r[1])
	}
}

func TestClassificationReport(t *testing.T) {
	yTrue := []int{0, 0, 1, 1}
	yPred := []int{0, 0, 1, 0}
	rep := ClassificationReport(yTrue, yPred, []string{"Node", "Edge"})
	for _, want := range []string{"Node", "Edge", "accuracy", "macro F1", "0.750"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}
