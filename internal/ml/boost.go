package ml

import (
	"errors"
	"math"
	"sort"
)

// GradientBoosting is a binary gradient-boosted-trees classifier with
// logistic loss and shallow regression trees as base learners. The paper
// finds it performs decently but "needs hundreds of thousands of training
// data to be useful" at its best (§4.3).
type GradientBoosting struct {
	// Rounds is the number of boosting stages; zero means 50.
	Rounds int
	// LearningRate shrinks each stage; zero means 0.1.
	LearningRate float64
	// MaxDepth bounds the regression trees; zero means 3.
	MaxDepth int

	f0    float64
	trees []*regressionTree
}

// Fit implements Classifier. Labels must be binary {0, 1}.
func (g *GradientBoosting) Fit(X [][]float64, y []int) error {
	classes, err := validate(X, y)
	if err != nil {
		return err
	}
	if classes > 2 {
		return errors.New("ml: GradientBoosting supports binary labels only")
	}
	if g.Rounds <= 0 {
		g.Rounds = 50
	}
	if g.LearningRate == 0 {
		g.LearningRate = 0.1
	}
	if g.MaxDepth <= 0 {
		g.MaxDepth = 3
	}

	n := len(X)
	pos := 0
	for _, yi := range y {
		pos += yi
	}
	p := (float64(pos) + 1) / (float64(n) + 2)
	g.f0 = math.Log(p / (1 - p))

	f := make([]float64, n)
	for i := range f {
		f[i] = g.f0
	}
	resid := make([]float64, n)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	g.trees = g.trees[:0]
	for round := 0; round < g.Rounds; round++ {
		for i := range resid {
			pi := sigmoid(f[i])
			resid[i] = float64(y[i]) - pi
		}
		tree := &regressionTree{maxDepth: g.MaxDepth, minLeaf: 2}
		tree.fit(X, resid, idx, 0)
		for i := range f {
			f[i] += g.LearningRate * tree.predict(X[i])
		}
		g.trees = append(g.trees, tree)
	}
	return nil
}

// Predict implements Classifier.
func (g *GradientBoosting) Predict(x []float64) int {
	f := g.f0
	for _, t := range g.trees {
		f += g.LearningRate * t.predict(x)
	}
	if f >= 0 {
		return 1
	}
	return 0
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// regressionTree is a CART regression tree minimizing squared error,
// used as the gradient-boosting base learner.
type regressionTree struct {
	maxDepth int
	minLeaf  int
	root     *regNode
}

type regNode struct {
	feature   int
	threshold float64
	left      *regNode
	right     *regNode
	leaf      bool
	value     float64
}

func (t *regressionTree) fit(X [][]float64, target []float64, idx []int, _ int) {
	t.root = t.build(X, target, idx, 0)
}

func (t *regressionTree) build(X [][]float64, target []float64, idx []int, depth int) *regNode {
	var sum float64
	for _, i := range idx {
		sum += target[i]
	}
	mean := sum / float64(len(idx))
	node := &regNode{leaf: true, value: mean}
	if depth >= t.maxDepth || len(idx) < 2*t.minLeaf {
		return node
	}

	parentSSE := 0.0
	for _, i := range idx {
		d := target[i] - mean
		parentSSE += d * d
	}
	if parentSSE < 1e-12 {
		return node
	}

	bestGain := 0.0
	bestFeat, bestThr := -1, 0.0
	d := len(X[0])
	vals := make([]float64, len(idx))
	order := make([]int, len(idx))
	for f := 0; f < d; f++ {
		for k, i := range idx {
			vals[k] = X[i][f]
			order[k] = i
		}
		sort.Sort(&byFeature{vals: vals, idx: order})
		var leftSum, leftSq float64
		var totalSq float64
		for _, i := range order {
			totalSq += target[i] * target[i]
		}
		totalSum := sum
		for k := 0; k < len(order)-1; k++ {
			ti := target[order[k]]
			leftSum += ti
			leftSq += ti * ti
			if vals[k] == vals[k+1] {
				continue
			}
			nl, nr := k+1, len(order)-k-1
			if nl < t.minLeaf || nr < t.minLeaf {
				continue
			}
			rightSum := totalSum - leftSum
			rightSq := totalSq - leftSq
			sseL := leftSq - leftSum*leftSum/float64(nl)
			sseR := rightSq - rightSum*rightSum/float64(nr)
			if gain := parentSSE - sseL - sseR; gain > bestGain+1e-12 {
				bestGain = gain
				bestFeat = f
				bestThr = (vals[k] + vals[k+1]) / 2
			}
		}
	}
	if bestFeat < 0 {
		return node
	}
	var leftIdx, rightIdx []int
	for _, i := range idx {
		if X[i][bestFeat] <= bestThr {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	if len(leftIdx) == 0 || len(rightIdx) == 0 {
		return node
	}
	node.leaf = false
	node.feature = bestFeat
	node.threshold = bestThr
	node.left = t.build(X, target, leftIdx, depth+1)
	node.right = t.build(X, target, rightIdx, depth+1)
	return node
}

func (t *regressionTree) predict(x []float64) float64 {
	n := t.root
	for !n.leaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}
