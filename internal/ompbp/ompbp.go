// Package ompbp is the OpenMP-equivalent CPU parallelization of loopy BP
// (paper §2.4): fork-join parallel-for regions over the node or edge loops
// with static or dynamic scheduling, atomic accumulator updates in the edge
// paradigm, and a reduction for the convergence check.
//
// Faithful to the construct it models, every parallel region forks fresh
// worker goroutines and joins them at a barrier — the per-region spin-up
// and tear-down overhead that the paper measures as a net slowdown for
// regions of sub-millisecond work.
package ompbp

import (
	"math"
	"sync"
	"sync/atomic"

	"credo/internal/bp"
	"credo/internal/graph"
	"credo/internal/kernel"
	"credo/internal/telemetry"
)

// Schedule selects the OpenMP-style loop schedule.
type Schedule int

const (
	// Static splits the iteration space into one contiguous chunk per
	// thread (OpenMP's default schedule).
	Static Schedule = iota
	// Dynamic hands out fixed-size chunks from a shared atomic counter,
	// trading balance for contention — the paper found its extra
	// overhead made the tail-heavy workload worse.
	Dynamic
)

// Options configures a parallel run.
type Options struct {
	bp.Options
	// Threads is the number of worker goroutines per parallel region.
	// Zero means 8, the paper's core count.
	Threads int
	// Schedule is the loop schedule.
	Schedule Schedule
	// ChunkSize is the dynamic-schedule chunk size. Zero means 256.
	ChunkSize int
}

func (o Options) withDefaults() Options {
	if o.Threads <= 0 {
		o.Threads = 8
	}
	if o.ChunkSize <= 0 {
		o.ChunkSize = 256
	}
	o.Options = o.Options.ResolveVariant()
	return o
}

// parallelFor runs body over [0, n) with the configured schedule, forking
// opts.Threads goroutines and joining them (one OpenMP parallel region).
// body receives the worker index and the iteration index.
func parallelFor(n int, opts Options, body func(worker, i int)) {
	if n == 0 {
		return
	}
	var wg sync.WaitGroup
	switch opts.Schedule {
	case Dynamic:
		var cursor atomic.Int64
		for w := 0; w < opts.Threads; w++ {
			wg.Add(1)
			go func(worker int) {
				defer wg.Done()
				for {
					start := int(cursor.Add(int64(opts.ChunkSize))) - opts.ChunkSize
					if start >= n {
						return
					}
					end := start + opts.ChunkSize
					if end > n {
						end = n
					}
					for i := start; i < end; i++ {
						body(worker, i)
					}
				}
			}(w)
		}
	default: // Static
		chunk := (n + opts.Threads - 1) / opts.Threads
		for w := 0; w < opts.Threads; w++ {
			start := w * chunk
			if start >= n {
				break
			}
			end := start + chunk
			if end > n {
				end = n
			}
			wg.Add(1)
			go func(worker, start, end int) {
				defer wg.Done()
				for i := start; i < end; i++ {
					body(worker, i)
				}
			}(w, start, end)
		}
	}
	wg.Wait()
}

// AtomicAddFloat32 adds delta to the float stored in bits[i] with a CAS
// loop — the atomic update the edge paradigm pays for on every message.
// It is shared with the poolbp engine, whose edge paradigm performs the
// same sharded combine from persistent workers.
func AtomicAddFloat32(bits []uint32, i int, delta float32) {
	for {
		old := atomic.LoadUint32(&bits[i])
		f := math.Float32frombits(old) + delta
		if atomic.CompareAndSwapUint32(&bits[i], old, math.Float32bits(f)) {
			return
		}
	}
}

// RunNode executes loopy BP with per-node processing across CPU threads.
// Each node is owned by exactly one worker per iteration, so no atomics are
// needed; the cost is the repeated random-order loads of parent states.
func RunNode(g *graph.Graph, opts Options) bp.Result {
	opts = opts.withDefaults()
	o := opts.Options
	if o.Threshold == 0 {
		o.Threshold = bp.DefaultThreshold
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = bp.DefaultMaxIterations
	}
	if o.QueueThreshold == 0 {
		o.QueueThreshold = o.Threshold
	}

	s := g.States
	prev := append([]float32(nil), g.Beliefs...)
	deltas := make([]float32, g.NumNodes)
	inNext := make([]bool, g.NumNodes)
	partial := make([]float32, opts.Threads)
	k := kernel.New(g, o.Kernel)
	kss := make([]kernel.Scratch, opts.Threads)

	var res bp.Result
	var edgesProcessed, nodesProcessed atomic.Int64

	active := make([]int32, g.NumNodes)
	for v := range active {
		active[v] = int32(v)
	}
	if o.WorkQueue {
		res.Ops.QueuePushes += int64(g.NumNodes)
	}

	probe := o.Probe
	ctx, endTask := telemetry.BeginRun(engNode)
	emitRunStart(probe, engNode, int64(g.NumNodes), o.Threshold)
	var lastNodes, lastEdges int64

	for iter := 0; iter < o.MaxIterations; iter++ {
		res.Iterations = iter + 1
		res.Ops.Iterations++
		endIter := telemetry.StartRegion(ctx, "iteration")
		copy(prev, g.Beliefs)
		for w := range partial {
			partial[w] = 0
		}

		parallelFor(len(active), opts, func(worker, idx int) {
			v := active[idx]
			if g.Observed[v] {
				deltas[v] = 0
				return
			}
			nodesProcessed.Add(1)
			b := g.Beliefs[int(v)*s : int(v)*s+s]
			old := prev[int(v)*s : int(v)*s+s]
			deg := k.NodeUpdate(&kss[worker], b, v, prev)
			edgesProcessed.Add(int64(deg))
			d := graph.L1Diff(b, old)
			deltas[v] = d
			partial[worker] += d
		})

		var sum float32
		for _, p := range partial {
			sum += p
		}
		res.FinalDelta = sum
		if o.RecordDeltas {
			res.Deltas = append(res.Deltas, sum)
		}

		if o.WorkQueue {
			// Next frontier: successors of every node that moved (their
			// inputs changed). Rebuilt serially, as one ordered region.
			var next []int32
			for _, v := range active {
				if deltas[v] <= o.QueueThreshold {
					continue
				}
				lo, hi := g.OutOffsets[v], g.OutOffsets[v+1]
				for _, e := range g.OutEdges[lo:hi] {
					dst := g.EdgeDst[e]
					if !inNext[dst] {
						inNext[dst] = true
						next = append(next, dst)
						res.Ops.QueuePushes++
					}
				}
			}
			for _, v := range next {
				inNext[v] = false
			}
			active = next
		}

		endIter()
		if probe != nil {
			nodes, edges := nodesProcessed.Load(), edgesProcessed.Load()
			var fast, resc int64
			for w := range kss {
				fast += kss[w].Counters.FastPath
				resc += kss[w].Counters.Rescales
			}
			qlen := int64(-1)
			if o.WorkQueue {
				qlen = int64(len(active))
			}
			probe.Emit(telemetry.Event{
				Kind:     telemetry.KindIteration,
				Engine:   engNode,
				Iter:     int32(iter + 1),
				Delta:    sum,
				Updated:  nodes - lastNodes,
				Edges:    edges - lastEdges,
				Active:   qlen,
				Items:    int64(g.NumNodes),
				FastPath: fast,
				Rescales: resc,
			})
			lastNodes, lastEdges = nodes, edges
		}
		if sum < o.Threshold || (o.WorkQueue && len(active) == 0) {
			res.Converged = true
			break
		}
	}
	res.Ops.EdgesProcessed = edgesProcessed.Load()
	res.Ops.NodesProcessed = nodesProcessed.Load()
	res.Ops.MatrixOps = res.Ops.EdgesProcessed * int64(s*s)
	res.Ops.RandomLoads = res.Ops.EdgesProcessed * int64((s*4+63)/64)
	res.Ops.MemLoads = res.Ops.EdgesProcessed*int64(s) + res.Ops.NodesProcessed*int64(2*s)
	res.Ops.MemStores = res.Ops.NodesProcessed * int64(s)
	res.Ops.LogOps = res.Ops.EdgesProcessed*int64(s) + res.Ops.NodesProcessed*int64(s)
	for w := range kss {
		res.Ops.KernelFastPath += kss[w].Counters.FastPath
		res.Ops.RescaleOps += kss[w].Counters.Rescales
	}
	emitRunEnd(probe, engNode, &res)
	endTask()
	return res
}

// RunEdge executes loopy BP with per-edge processing across CPU threads.
// Edges sharing a destination race on its accumulator, so every
// accumulator update is an atomic CAS — the extra cost the paper weighs
// against the node paradigm's redundant loads.
func RunEdge(g *graph.Graph, opts Options) bp.Result {
	opts = opts.withDefaults()
	o := opts.Options
	if o.Threshold == 0 {
		o.Threshold = bp.DefaultThreshold
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = bp.DefaultMaxIterations
	}
	if o.QueueThreshold == 0 {
		o.QueueThreshold = o.Threshold
	}

	s := g.States
	prev := append([]float32(nil), g.Beliefs...)

	// Log-domain accumulators stored as raw float bits for atomic CAS.
	accBits := make([]uint32, g.NumNodes*s)
	for e := 0; e < g.NumEdges; e++ {
		dst := int(g.EdgeDst[e])
		m := g.Message(int32(e))
		for j := 0; j < s; j++ {
			f := math.Float32frombits(accBits[dst*s+j]) + bp.Logf(m[j])
			accBits[dst*s+j] = math.Float32bits(f)
		}
	}

	k := kernel.New(g, o.Kernel)
	scratch := make([][]float32, opts.Threads)
	for w := range scratch {
		scratch[w] = make([]float32, s)
	}
	kss := make([]kernel.Scratch, opts.Threads)
	nodeDelta := make([]float32, g.NumNodes)
	inNext := make([]bool, g.NumEdges)
	partial := make([]float32, opts.Threads)

	var res bp.Result
	var edgesProcessed, atomicOps atomic.Int64

	active := make([]int32, g.NumEdges)
	for e := range active {
		active[e] = int32(e)
	}
	if o.WorkQueue {
		res.Ops.QueuePushes += int64(g.NumEdges)
	}

	probe := o.Probe
	ctx, endTask := telemetry.BeginRun(engEdge)
	emitRunStart(probe, engEdge, int64(g.NumEdges), o.Threshold)
	var lastEdges int64

	for iter := 0; iter < o.MaxIterations; iter++ {
		res.Iterations = iter + 1
		res.Ops.Iterations++
		endIter := telemetry.StartRegion(ctx, "iteration")
		copy(prev, g.Beliefs)

		// Edge phase: recompute messages and atomically fold the change
		// into the destination accumulators.
		parallelFor(len(active), opts, func(worker, idx int) {
			e := active[idx]
			edgesProcessed.Add(1)
			src, dst := g.EdgeSrc[e], g.EdgeDst[e]
			msg := scratch[worker]
			parent := prev[int(src)*s : int(src)*s+s]
			k.Message(&kss[worker], msg, e, parent)
			old := g.Message(e)
			base := int(dst) * s
			for j := 0; j < s; j++ {
				AtomicAddFloat32(accBits, base+j, bp.Logf(msg[j])-bp.Logf(old[j]))
				old[j] = msg[j]
			}
			atomicOps.Add(int64(s))
		})

		// Combine phase: every node folds its accumulator with its prior.
		for w := range partial {
			partial[w] = 0
		}
		parallelFor(g.NumNodes, opts, func(worker, v int) {
			if g.Observed[v] {
				nodeDelta[v] = 0
				return
			}
			b := g.Beliefs[v*s : v*s+s]
			old := prev[v*s : v*s+s]
			acc := scratch[worker]
			for j := 0; j < s; j++ {
				acc[j] = math.Float32frombits(atomic.LoadUint32(&accBits[v*s+j]))
			}
			bp.ExpNormalize(b, g.Priors[v*s:v*s+s], acc)
			bp.Blend(b, old, o.Damping)
			d := graph.L1Diff(b, old)
			nodeDelta[v] = d
			partial[worker] += d
		})

		var sum float32
		for _, p := range partial {
			sum += p
		}
		res.FinalDelta = sum
		if o.RecordDeltas {
			res.Deltas = append(res.Deltas, sum)
		}

		if o.WorkQueue {
			// Next frontier: the out-edges of every node that moved.
			var next []int32
			for v := int32(0); v < int32(g.NumNodes); v++ {
				if nodeDelta[v] <= o.QueueThreshold {
					continue
				}
				lo, hi := g.OutOffsets[v], g.OutOffsets[v+1]
				for _, e := range g.OutEdges[lo:hi] {
					if !inNext[e] {
						inNext[e] = true
						next = append(next, e)
						res.Ops.QueuePushes++
					}
				}
			}
			for _, e := range next {
				inNext[e] = false
			}
			active = next
		}

		endIter()
		if probe != nil {
			edges := edgesProcessed.Load()
			qlen := int64(-1)
			if o.WorkQueue {
				qlen = int64(len(active))
			}
			probe.Emit(telemetry.Event{
				Kind:   telemetry.KindIteration,
				Engine: engEdge,
				Iter:   int32(iter + 1),
				Delta:  sum,
				// Every iteration's combine phase touches every node.
				Updated: int64(g.NumNodes),
				Edges:   edges - lastEdges,
				Active:  qlen,
				Items:   int64(g.NumEdges),
			})
			lastEdges = edges
		}
		if sum < o.Threshold || (o.WorkQueue && len(active) == 0) {
			res.Converged = true
			break
		}
	}
	res.Ops.EdgesProcessed = edgesProcessed.Load()
	res.Ops.AtomicOps = atomicOps.Load()
	res.Ops.NodesProcessed = res.Ops.Iterations * int64(g.NumNodes)
	res.Ops.MatrixOps = res.Ops.EdgesProcessed * int64(s*s)
	res.Ops.MemLoads = res.Ops.EdgesProcessed*int64(2*s) + res.Ops.NodesProcessed*int64(3*s)
	res.Ops.MemStores = res.Ops.EdgesProcessed*int64(2*s) + res.Ops.NodesProcessed*int64(s)
	res.Ops.LogOps = res.Ops.EdgesProcessed*int64(2*s) + res.Ops.NodesProcessed*int64(s)
	emitRunEnd(probe, engEdge, &res)
	endTask()
	return res
}
