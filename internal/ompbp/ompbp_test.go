package ompbp

import (
	"math"
	"sync/atomic"
	"testing"

	"credo/internal/bp"
	"credo/internal/gen"
	"credo/internal/graph"
)

func maxBeliefDiff(a, b *graph.Graph) float64 {
	var maxd float64
	for i := range a.Beliefs {
		d := math.Abs(float64(a.Beliefs[i] - b.Beliefs[i]))
		if d > maxd {
			maxd = d
		}
	}
	return maxd
}

func TestParallelMatchesSequential(t *testing.T) {
	for _, tc := range []struct {
		name     string
		seq      func(*graph.Graph, bp.Options) bp.Result
		par      func(*graph.Graph, Options) bp.Result
		schedule Schedule
	}{
		{"node-static", bp.RunNode, RunNode, Static},
		{"node-dynamic", bp.RunNode, RunNode, Dynamic},
		{"edge-static", bp.RunEdge, RunEdge, Static},
		{"edge-dynamic", bp.RunEdge, RunEdge, Dynamic},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g1, err := gen.Synthetic(400, 1600, gen.Config{Seed: 21, States: 3})
			if err != nil {
				t.Fatal(err)
			}
			g2 := g1.Clone()
			r1 := tc.seq(g1, bp.Options{})
			r2 := tc.par(g2, Options{Threads: 4, Schedule: tc.schedule})
			if d := maxBeliefDiff(g1, g2); d > 1e-3 {
				t.Errorf("parallel beliefs diverge from sequential by %v", d)
			}
			if abs := r1.Iterations - r2.Iterations; abs > 2 && abs < -2 {
				t.Errorf("iteration counts diverge: %d vs %d", r1.Iterations, r2.Iterations)
			}
		})
	}
}

func TestParallelWorkQueue(t *testing.T) {
	g1, err := gen.Synthetic(500, 2000, gen.Config{Seed: 13, States: 2})
	if err != nil {
		t.Fatal(err)
	}
	g2 := g1.Clone()
	r1 := RunNode(g1, Options{Threads: 4})
	r2 := RunNode(g2, Options{Threads: 4, Options: bp.Options{WorkQueue: true}})
	if d := maxBeliefDiff(g1, g2); d > 5e-3 {
		t.Errorf("queue beliefs diverge by %v", d)
	}
	if r2.Ops.NodesProcessed >= r1.Ops.NodesProcessed {
		t.Errorf("queue did not reduce work: %d >= %d", r2.Ops.NodesProcessed, r1.Ops.NodesProcessed)
	}
}

func TestEdgeAtomicsCounted(t *testing.T) {
	g, err := gen.Synthetic(100, 400, gen.Config{Seed: 7, States: 2})
	if err != nil {
		t.Fatal(err)
	}
	res := RunEdge(g, Options{Threads: 4})
	if res.Ops.AtomicOps == 0 {
		t.Error("edge paradigm recorded no atomic operations")
	}
	want := res.Ops.EdgesProcessed * int64(g.States)
	if res.Ops.AtomicOps != want {
		t.Errorf("atomic ops = %d, want %d", res.Ops.AtomicOps, want)
	}
}

func TestObservedNodesClampedParallel(t *testing.T) {
	g, err := gen.Synthetic(80, 320, gen.Config{Seed: 3, States: 3})
	if err != nil {
		t.Fatal(err)
	}
	_ = g.Observe(11, 1)
	for _, run := range []func(*graph.Graph, Options) bp.Result{RunNode, RunEdge} {
		c := g.Clone()
		run(c, Options{Threads: 4})
		b := c.Belief(11)
		if b[0] != 0 || b[1] != 1 || b[2] != 0 {
			t.Errorf("observed node drifted to %v", b)
		}
	}
}

func TestAtomicAddFloat32(t *testing.T) {
	bits := make([]uint32, 1)
	done := make(chan struct{})
	const workers, adds = 8, 1000
	for w := 0; w < workers; w++ {
		go func() {
			for i := 0; i < adds; i++ {
				AtomicAddFloat32(bits, 0, 1)
			}
			done <- struct{}{}
		}()
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	got := math.Float32frombits(atomic.LoadUint32(&bits[0]))
	if got != workers*adds {
		t.Errorf("atomic adds lost updates: got %v, want %d", got, workers*adds)
	}
}

func TestParallelForSchedules(t *testing.T) {
	for _, sched := range []Schedule{Static, Dynamic} {
		var count atomic.Int64
		seen := make([]atomic.Bool, 1000)
		parallelFor(1000, Options{Threads: 7, ChunkSize: 16, Schedule: sched}.withDefaults(), func(_, i int) {
			count.Add(1)
			if seen[i].Swap(true) {
				t.Errorf("schedule %v visited index %d twice", sched, i)
			}
		})
		if count.Load() != 1000 {
			t.Errorf("schedule %v visited %d indices, want 1000", sched, count.Load())
		}
	}
	// Degenerate cases.
	parallelFor(0, Options{Threads: 4}.withDefaults(), func(_, _ int) { t.Error("body called for n=0") })
	ran := false
	parallelFor(1, Options{Threads: 16}.withDefaults(), func(_, i int) { ran = true })
	if !ran {
		t.Error("n=1 body never ran")
	}
}

func TestThreadCountsProduceSameBeliefs(t *testing.T) {
	base, err := gen.PowerLaw(300, 1500, gen.Config{Seed: 31, States: 4})
	if err != nil {
		t.Fatal(err)
	}
	ref := base.Clone()
	RunNode(ref, Options{Threads: 1})
	for _, threads := range []int{2, 4, 8} {
		g := base.Clone()
		RunNode(g, Options{Threads: threads})
		if d := maxBeliefDiff(ref, g); d > 1e-3 {
			t.Errorf("threads=%d beliefs diverge by %v", threads, d)
		}
	}
}
