package ompbp

import (
	"credo/internal/bp"
	"credo/internal/telemetry"
)

// Engine names as they appear in telemetry events.
const (
	engNode = "omp.node"
	engEdge = "omp.edge"
)

// emitRunStart and emitRunEnd frame one engine execution; both are
// nil-safe so the disabled path never builds an event.
func emitRunStart(probe telemetry.Probe, engine string, items int64, threshold float32) {
	if probe == nil {
		return
	}
	probe.Emit(telemetry.Event{
		Kind:      telemetry.KindRunStart,
		Engine:    engine,
		Items:     items,
		Threshold: threshold,
	})
}

func emitRunEnd(probe telemetry.Probe, engine string, res *bp.Result) {
	if probe == nil {
		return
	}
	probe.Emit(telemetry.Event{
		Kind:      telemetry.KindRunEnd,
		Engine:    engine,
		Iter:      int32(res.Iterations),
		Delta:     res.FinalDelta,
		Converged: res.Converged,
		Updated:   res.Ops.NodesProcessed,
		Edges:     res.Ops.EdgesProcessed,
		FastPath:  res.Ops.KernelFastPath,
		Rescales:  res.Ops.RescaleOps,
	})
}
