// Seeded streaming-mutation generation: the dynamic-graph counterpart of
// the topology generators. A mutation stream stands in for the paper's
// motivating workloads — rumor and malware propagation over networks that
// keep changing while inference runs: contacts appear (edge adds), node
// reputations drift (prior updates), and observations arrive and are
// withdrawn (evidence set/retract).
//
// Like every generator in this package, a stream is deterministic for a
// given seed, so the delta-vs-rebuild differential harness, the fuzzer
// and the credobench delta experiment all replay identical histories.
package gen

import (
	"fmt"
	"math/rand"

	"credo/internal/graph"
)

// MutationKind discriminates the four delta operations of graph's
// dynamic layer.
type MutationKind uint8

const (
	// MutAddEdge appends a directed edge via Graph.AddEdgeDelta.
	MutAddEdge MutationKind = iota
	// MutPrior replaces a node's prior via Graph.UpdatePrior.
	MutPrior
	// MutEvidence clamps a node via Graph.SetEvidence.
	MutEvidence
	// MutRetract removes a clamp via Graph.RetractEvidence.
	MutRetract
)

// String names the kind for reports and fuzz failure messages.
func (k MutationKind) String() string {
	switch k {
	case MutAddEdge:
		return "add-edge"
	case MutPrior:
		return "update-prior"
	case MutEvidence:
		return "set-evidence"
	case MutRetract:
		return "retract-evidence"
	}
	return fmt.Sprintf("mutation(%d)", uint8(k))
}

// Mutation is one replayable delta operation. Exactly the fields of its
// kind are meaningful: (Src, Dst, Mat) for MutAddEdge, (Node, Prior) for
// MutPrior, (Node, State) for MutEvidence, Node for MutRetract.
type Mutation struct {
	Kind  MutationKind
	Src   int32
	Dst   int32
	Node  int32
	State int
	Prior []float32
	Mat   *graph.JointMatrix
}

// Apply replays the mutation onto a built graph through the delta layer.
func (m Mutation) Apply(g *graph.Graph) error {
	switch m.Kind {
	case MutAddEdge:
		return g.AddEdgeDelta(m.Src, m.Dst, m.Mat)
	case MutPrior:
		return g.UpdatePrior(m.Node, m.Prior)
	case MutEvidence:
		return g.SetEvidence(m.Node, m.State)
	case MutRetract:
		return g.RetractEvidence(m.Node)
	}
	return fmt.Errorf("gen: unknown mutation kind %d", m.Kind)
}

// Mutations generates a deterministic stream of n mutations, every one
// valid against g's shape at its point in the stream: edge adds respect
// the graph's matrix mode, evidence only lands on currently-unclamped
// nodes, and retractions only target clamps the stream itself placed
// (the delta layer cannot restore a pre-stream clamp's prior). The mix
// is roughly 25% edge adds, 35% prior drifts, 25% evidence arrivals and
// 15% retractions, degrading gracefully on graphs too saturated for a
// drawn kind (a retraction with nothing to retract becomes a prior
// drift). cfg contributes Seed, Keep (edge-matrix coupling) and nothing
// else; States comes from the graph.
func Mutations(g *graph.Graph, n int, cfg Config) []Mutation {
	cfg.States = g.States
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	nn := int32(g.NumNodes)
	if nn == 0 {
		return nil
	}

	observed := append([]bool(nil), g.Observed...)
	unobserved := 0
	for _, o := range observed {
		if !o {
			unobserved++
		}
	}
	var retractable []int32

	pickUnobserved := func() int32 {
		for {
			v := int32(rng.Intn(int(nn)))
			if !observed[v] {
				return v
			}
		}
	}

	muts := make([]Mutation, 0, n)
	for i := 0; i < n; i++ {
		r := rng.Float64()
		var kind MutationKind
		switch {
		case r < 0.25:
			kind = MutAddEdge
		case r < 0.60:
			kind = MutPrior
		case r < 0.85:
			kind = MutEvidence
		default:
			kind = MutRetract
		}
		// Degrade saturated draws: no clamps to lift, or so few free
		// nodes left that clamping another would freeze the graph.
		if kind == MutRetract && len(retractable) == 0 {
			kind = MutPrior
		}
		if kind == MutEvidence && unobserved <= 2 {
			kind = MutPrior
		}

		var m Mutation
		switch kind {
		case MutAddEdge:
			src := int32(rng.Intn(int(nn)))
			dst := int32(rng.Intn(int(nn)))
			if nn > 1 {
				for dst == src {
					dst = int32(rng.Intn(int(nn)))
				}
			}
			var mat *graph.JointMatrix
			if !g.SharedMatrix() {
				jm := RandomJointMatrix(rng, g.States, cfg.Keep)
				mat = &jm
			}
			m = Mutation{Kind: MutAddEdge, Src: src, Dst: dst, Mat: mat}
		case MutPrior:
			p := make([]float32, g.States)
			RandomDistribution(rng, p)
			m = Mutation{Kind: MutPrior, Node: int32(rng.Intn(int(nn))), Prior: p}
		case MutEvidence:
			v := pickUnobserved()
			m = Mutation{Kind: MutEvidence, Node: v, State: rng.Intn(g.States)}
			observed[v] = true
			unobserved--
			retractable = append(retractable, v)
		case MutRetract:
			k := rng.Intn(len(retractable))
			v := retractable[k]
			retractable = append(retractable[:k], retractable[k+1:]...)
			m = Mutation{Kind: MutRetract, Node: v}
			observed[v] = false
			unobserved++
		}
		muts = append(muts, m)
	}
	return muts
}
