package gen

import (
	"bytes"
	"testing"

	"credo/internal/graph"
	"credo/internal/mtxbp"
)

// TestStreamSyntheticMatchesSynthetic: the streamed file parses back to
// exactly the graph the in-memory generator builds.
func TestStreamSyntheticMatchesSynthetic(t *testing.T) {
	for _, shared := range []bool{true, false} {
		cfg := Config{Seed: 17, States: 3, Shared: shared}
		want, err := Synthetic(60, 240, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var nodes, edges bytes.Buffer
		var sm *graph.JointMatrix
		if shared {
			m := graph.DiagonalJointMatrix(3, 0.75)
			sm = &m
		}
		w, err := mtxbp.NewStreamWriter(&nodes, &edges, 60, 240, 3, sm)
		if err != nil {
			t.Fatal(err)
		}
		if err := StreamSynthetic(w, 60, 240, cfg); err != nil {
			t.Fatal(err)
		}
		got, err := mtxbp.Read(&nodes, &edges)
		if err != nil {
			t.Fatal(err)
		}
		if got.NumNodes != want.NumNodes || got.NumEdges != want.NumEdges {
			t.Fatalf("shared=%v: shape %d/%d vs %d/%d", shared, got.NumNodes, got.NumEdges, want.NumNodes, want.NumEdges)
		}
		for e := 0; e < want.NumEdges; e++ {
			if got.EdgeSrc[e] != want.EdgeSrc[e] || got.EdgeDst[e] != want.EdgeDst[e] {
				t.Fatalf("shared=%v: edge %d differs", shared, e)
			}
		}
		for i := range want.Priors {
			d := want.Priors[i] - got.Priors[i]
			if d > 1e-5 || d < -1e-5 {
				t.Fatalf("shared=%v: prior %d differs by %v", shared, i, d)
			}
		}
	}
}

func TestStreamWriterContracts(t *testing.T) {
	var nodes, edges bytes.Buffer
	w, err := mtxbp.NewStreamWriter(&nodes, &edges, 2, 1, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Close before counts met.
	if err := w.Close(); err == nil {
		t.Error("premature Close accepted")
	}
	if err := w.WriteNode([]float32{0.5, 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteNode([]float32{0.5}); err == nil {
		t.Error("wrong prior width accepted")
	}
	if err := w.WriteNode([]float32{0.3, 0.7}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteNode([]float32{0.5, 0.5}); err == nil {
		t.Error("overflow node accepted")
	}
	m := graph.DiagonalJointMatrix(2, 0.8)
	if err := w.WriteEdge(0, 5, &m); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if err := w.WriteEdge(0, 1, nil); err == nil {
		t.Error("missing matrix accepted in per-edge mode")
	}
	if err := w.WriteEdge(0, 1, &m); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteEdge(1, 0, &m); err == nil {
		t.Error("overflow edge accepted")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := mtxbp.Read(&nodes, &edges); err != nil {
		t.Fatalf("streamed output unparseable: %v", err)
	}
	// Bad construction parameters.
	if _, err := mtxbp.NewStreamWriter(&nodes, &edges, 1, 1, 0, nil); err == nil {
		t.Error("states=0 accepted")
	}
	if _, err := mtxbp.NewStreamWriter(&nodes, &edges, -1, 1, 2, nil); err == nil {
		t.Error("negative nodes accepted")
	}
	bad := graph.DiagonalJointMatrix(3, 0.8)
	if _, err := mtxbp.NewStreamWriter(&nodes, &edges, 1, 1, 2, &bad); err == nil {
		t.Error("mismatched shared matrix accepted")
	}
}
