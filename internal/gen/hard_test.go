package gen

import (
	"testing"

	"credo/internal/graph"
)

// sameGraph compares the structural identity two seeded generator calls
// must share: topology, matrices and priors, element for element.
func sameGraph(t *testing.T, name string, a, b *graph.Graph) {
	t.Helper()
	if a.NumNodes != b.NumNodes || a.NumEdges != b.NumEdges {
		t.Fatalf("%s: same seed, different shape: %dx%d vs %dx%d",
			name, a.NumNodes, a.NumEdges, b.NumNodes, b.NumEdges)
	}
	for e := 0; e < a.NumEdges; e++ {
		if a.EdgeSrc[e] != b.EdgeSrc[e] || a.EdgeDst[e] != b.EdgeDst[e] {
			t.Fatalf("%s: same seed, edge %d differs: %d→%d vs %d→%d",
				name, e, a.EdgeSrc[e], a.EdgeDst[e], b.EdgeSrc[e], b.EdgeDst[e])
		}
	}
	for i := range a.Priors {
		if a.Priors[i] != b.Priors[i] {
			t.Fatalf("%s: same seed, prior %d differs: %g vs %g", name, i, a.Priors[i], b.Priors[i])
		}
	}
	for e := range a.EdgeMats {
		am, bm := a.EdgeMats[e], b.EdgeMats[e]
		for i := range am.Data {
			if am.Data[i] != bm.Data[i] {
				t.Fatalf("%s: same seed, matrix of edge %d differs", name, e)
			}
		}
	}
}

// reverseEdges checks every directed edge has a reverse partner — the
// adversarial generators emit undirected links, and the circular
// correction needs the echo path to exist.
func reverseEdges(t *testing.T, name string, g *graph.Graph) {
	t.Helper()
	type pair struct{ s, d int32 }
	count := map[pair]int{}
	for e := 0; e < g.NumEdges; e++ {
		count[pair{g.EdgeSrc[e], g.EdgeDst[e]}]++
	}
	for p, n := range count {
		if rn := count[pair{p.d, p.s}]; rn != n {
			t.Fatalf("%s: %d edges %d→%d but %d reverse", name, n, p.s, p.d, rn)
		}
	}
}

func TestHardGeneratorsDeterministicAndUndirected(t *testing.T) {
	builds := []struct {
		name  string
		build func(seed int64) (*graph.Graph, error)
	}{
		{"denseER", func(seed int64) (*graph.Graph, error) {
			return DenseER(30, 100, Config{Seed: seed, States: 2, Keep: 0.05})
		}},
		{"frustgrid", func(seed int64) (*graph.Graph, error) {
			return FrustratedGrid(8, 8, 0.5, Config{Seed: seed, States: 2, Keep: 0.95})
		}},
		{"hubskew", func(seed int64) (*graph.Graph, error) {
			return HubSkew(4, 40, Config{Seed: seed, States: 2, Keep: 0.95})
		}},
	}
	for _, b := range builds {
		a, err := b.build(7)
		if err != nil {
			t.Fatalf("%s: %v", b.name, err)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("%s: invalid graph: %v", b.name, err)
		}
		c, err := b.build(7)
		if err != nil {
			t.Fatalf("%s: %v", b.name, err)
		}
		sameGraph(t, b.name, a, c)
		reverseEdges(t, b.name, a)
		d, err := b.build(8)
		if err != nil {
			t.Fatalf("%s: %v", b.name, err)
		}
		if graph.L1Diff(a.Priors, d.Priors) == 0 {
			t.Errorf("%s: different seeds produced identical priors", b.name)
		}
	}
}

func TestHardGeneratorSizes(t *testing.T) {
	g, err := DenseER(30, 100, Config{Seed: 1, States: 2, Keep: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes != 30 || g.NumEdges != 200 {
		t.Errorf("denseER: %d nodes, %d directed edges; want 30, 200", g.NumNodes, g.NumEdges)
	}
	g, err = FrustratedGrid(5, 4, 0.5, Config{Seed: 1, States: 2, Keep: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	// A w×h lattice has w(h−1)+h(w−1) links, two directed edges each.
	if g.NumNodes != 20 || g.NumEdges != 2*(5*3+4*4) {
		t.Errorf("frustgrid: %d nodes, %d directed edges; want 20, %d", g.NumNodes, g.NumEdges, 2*(5*3+4*4))
	}
	g, err = HubSkew(4, 10, Config{Seed: 1, States: 2, Keep: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	// 4 hubs pairwise (6 links) plus one link per leaf.
	if g.NumNodes != 14 || g.NumEdges != 2*(6+10) {
		t.Errorf("hubskew: %d nodes, %d directed edges; want 14, %d", g.NumNodes, g.NumEdges, 2*(6+10))
	}
	md := g.Stats()
	if md.MaxInDegree < 5 {
		t.Errorf("hubskew: max degree %d, want hub-dominated (>=5)", md.MaxInDegree)
	}
}

func TestRepelKeep(t *testing.T) {
	if got := repelKeep(2, 0.95); got < 0.049 || got > 0.051 {
		t.Errorf("repelKeep(2, 0.95) = %g, want 0.05", got)
	}
	if got := repelKeep(1, 0.95); got != 0.95 {
		t.Errorf("repelKeep(1, 0.95) = %g, want passthrough", got)
	}
}

func TestHardGeneratorErrors(t *testing.T) {
	if _, err := DenseER(1, 10, Config{States: 2}); err == nil {
		t.Error("denseER with n=1 must fail")
	}
	if _, err := FrustratedGrid(0, 5, 0.5, Config{States: 2}); err == nil {
		t.Error("frustrated grid with zero width must fail")
	}
	if _, err := FrustratedGrid(5, 5, 0.5, Config{States: 2, Shared: true}); err == nil {
		t.Error("frustrated grid with a shared matrix must fail")
	}
	if _, err := HubSkew(1, 10, Config{States: 2}); err == nil {
		t.Error("hub-skew with one hub must fail")
	}
	if _, err := HubSkew(3, -1, Config{States: 2}); err == nil {
		t.Error("hub-skew with negative leaves must fail")
	}
}
