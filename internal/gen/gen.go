// Package gen generates synthetic belief networks standing in for the
// benchmark suite of Table 1: uniform-random NxM graphs, Kronecker (R-MAT)
// graphs matching the kron-g500 family, preferential-attachment power-law
// graphs standing in for the social/web networks, plus trees and lattice
// grids for the tree-BP baseline and the image-correction use case.
//
// All generators are deterministic for a given seed, and all produce graphs
// through graph.Builder so every Credo implementation sees identical
// layouts.
package gen

import (
	"fmt"
	"math/rand"

	"credo/internal/graph"
)

// Config controls belief and matrix generation shared by all topologies.
type Config struct {
	// Seed makes generation deterministic.
	Seed int64
	// States is the belief width (2, 3 or 32 in the paper's use cases).
	States int
	// Shared selects the single shared joint-probability-matrix mode of
	// paper §2.2 instead of one random matrix per edge.
	Shared bool
	// Keep is the diagonal weight of generated joint matrices: the
	// probability that a neighbor is in the same state. Zero means 0.75.
	Keep float32
	// UniformPriors makes every node prior uniform instead of random.
	UniformPriors bool
}

func (c Config) withDefaults() Config {
	if c.States == 0 {
		c.States = 2
	}
	if c.Keep == 0 {
		c.Keep = 0.75
	}
	return c
}

// RandomDistribution fills dst with a random probability distribution.
func RandomDistribution(rng *rand.Rand, dst []float32) {
	var sum float32
	for i := range dst {
		v := float32(rng.Float64()) + 1e-3
		dst[i] = v
		sum += v
	}
	inv := 1 / sum
	for i := range dst {
		dst[i] *= inv
	}
}

// RandomJointMatrix returns a random row-stochastic matrix with diagonal
// weight approximately keep.
func RandomJointMatrix(rng *rand.Rand, states int, keep float32) graph.JointMatrix {
	m := graph.NewJointMatrix(states, states)
	for i := 0; i < states; i++ {
		row := m.Row(i)
		var offSum float32
		for j := range row {
			if j == i {
				continue
			}
			row[j] = float32(rng.Float64()) + 1e-3
			offSum += row[j]
		}
		// Choose the diagonal so the normalized row keeps exactly `keep`
		// mass on the diagonal (for states > 1).
		if states > 1 && keep < 1 {
			row[i] = offSum * keep / (1 - keep)
		} else {
			row[i] = 1
		}
	}
	m.NormalizeRows()
	return m
}

// builderFor creates a builder with cfg's states, shared matrix and n nodes
// with generated priors.
func builderFor(n int, cfg Config, rng *rand.Rand) (*graph.Builder, error) {
	b := graph.NewBuilder(cfg.States)
	if cfg.Shared {
		if err := b.SetShared(graph.DiagonalJointMatrix(cfg.States, cfg.Keep)); err != nil {
			return nil, err
		}
	}
	prior := make([]float32, cfg.States)
	for i := 0; i < n; i++ {
		var p []float32
		if !cfg.UniformPriors {
			RandomDistribution(rng, prior)
			p = prior
		}
		if _, err := b.AddNode(p); err != nil {
			return nil, err
		}
	}
	return b, nil
}

func (c Config) edgeMatrix(rng *rand.Rand) *graph.JointMatrix {
	if c.Shared {
		return nil
	}
	m := RandomJointMatrix(rng, c.States, c.Keep)
	return &m
}

// Synthetic generates the paper's NxM synthetic family: n nodes and m
// uniformly random directed edges (self-loops excluded, duplicates
// permitted as in a multigraph edge list).
func Synthetic(n, m int, cfg Config) (*graph.Graph, error) {
	cfg = cfg.withDefaults()
	if n <= 0 {
		return nil, fmt.Errorf("gen: synthetic graph needs n > 0, got %d", n)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b, err := builderFor(n, cfg, rng)
	if err != nil {
		return nil, err
	}
	for i := 0; i < m; i++ {
		src := int32(rng.Intn(n))
		dst := int32(rng.Intn(n))
		if n > 1 {
			for dst == src {
				dst = int32(rng.Intn(n))
			}
		}
		if err := b.AddEdge(src, dst, cfg.edgeMatrix(rng)); err != nil {
			return nil, err
		}
	}
	return b.Build()
}

// Kronecker generates an R-MAT graph with 2^scale nodes and
// edgeFactor·2^scale directed edges using the Graph500 partition
// probabilities (A=0.57, B=0.19, C=0.19, D=0.05), standing in for the
// kron-g500-lognNN benchmarks.
func Kronecker(scale, edgeFactor int, cfg Config) (*graph.Graph, error) {
	cfg = cfg.withDefaults()
	if scale <= 0 || scale > 30 {
		return nil, fmt.Errorf("gen: kronecker scale %d out of range [1,30]", scale)
	}
	n := 1 << uint(scale)
	m := edgeFactor * n
	rng := rand.New(rand.NewSource(cfg.Seed))
	b, err := builderFor(n, cfg, rng)
	if err != nil {
		return nil, err
	}
	const a, bb, c = 0.57, 0.19, 0.19
	for i := 0; i < m; i++ {
		var src, dst int
		for level := 0; level < scale; level++ {
			r := rng.Float64()
			src <<= 1
			dst <<= 1
			switch {
			case r < a:
				// top-left quadrant
			case r < a+bb:
				dst |= 1
			case r < a+bb+c:
				src |= 1
			default:
				src |= 1
				dst |= 1
			}
		}
		if src == dst {
			dst = (dst + 1) % n
		}
		if err := b.AddEdge(int32(src), int32(dst), cfg.edgeMatrix(rng)); err != nil {
			return nil, err
		}
	}
	return b.Build()
}

// PowerLaw generates a preferential-attachment graph of n nodes and
// approximately m directed edges, standing in for the social and web
// benchmarks (GO, LJ, PO, TW, ...). New endpoints are chosen proportionally
// to current degree via the repeated-endpoint trick.
func PowerLaw(n, m int, cfg Config) (*graph.Graph, error) {
	cfg = cfg.withDefaults()
	if n < 2 {
		return nil, fmt.Errorf("gen: power-law graph needs n >= 2, got %d", n)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b, err := builderFor(n, cfg, rng)
	if err != nil {
		return nil, err
	}
	// endpoints records every endpoint ever used; drawing uniformly from it
	// is preferential attachment.
	endpoints := make([]int32, 0, 2*m+2)
	endpoints = append(endpoints, 0, 1)
	for i := 0; i < m; i++ {
		src := int32(rng.Intn(n))
		var dst int32
		if rng.Float64() < 0.8 {
			dst = endpoints[rng.Intn(len(endpoints))]
		} else {
			dst = int32(rng.Intn(n))
		}
		if dst == src {
			dst = (dst + 1) % int32(n)
		}
		if err := b.AddEdge(src, dst, cfg.edgeMatrix(rng)); err != nil {
			return nil, err
		}
		endpoints = append(endpoints, src, dst)
	}
	return b.Build()
}

// Tree generates a complete branching-ary tree of n nodes with both
// directions of every parent-child link, the workload of the non-loopy
// two-pass BP baseline. Node 0 is the root; the parent of node i>0 is
// (i-1)/branching.
func Tree(n, branching int, cfg Config) (*graph.Graph, error) {
	cfg = cfg.withDefaults()
	if n <= 0 || branching <= 0 {
		return nil, fmt.Errorf("gen: tree needs n > 0 and branching > 0, got %d/%d", n, branching)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b, err := builderFor(n, cfg, rng)
	if err != nil {
		return nil, err
	}
	for i := 1; i < n; i++ {
		parent := int32((i - 1) / branching)
		if err := b.AddUndirected(parent, int32(i), cfg.edgeMatrix(rng)); err != nil {
			return nil, err
		}
	}
	return b.Build()
}

// DirectedTree generates a complete branching-ary tree of n nodes with a
// single parent→child directed edge per link — the acyclic pairwise-factor
// form consumed by the exact two-pass engine (bp.ExactTree). Node 0 is the
// root; the parent of node i>0 is (i-1)/branching.
func DirectedTree(n, branching int, cfg Config) (*graph.Graph, error) {
	cfg = cfg.withDefaults()
	if n <= 0 || branching <= 0 {
		return nil, fmt.Errorf("gen: tree needs n > 0 and branching > 0, got %d/%d", n, branching)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b, err := builderFor(n, cfg, rng)
	if err != nil {
		return nil, err
	}
	for i := 1; i < n; i++ {
		parent := int32((i - 1) / branching)
		if err := b.AddEdge(parent, int32(i), cfg.edgeMatrix(rng)); err != nil {
			return nil, err
		}
	}
	return b.Build()
}

// Grid generates a w x h lattice MRF with 4-neighborhood coupling (both
// directions per link), the topology of the image-correction use case.
// Node (x, y) has id y*w+x.
func Grid(w, h int, cfg Config) (*graph.Graph, error) {
	cfg = cfg.withDefaults()
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("gen: grid needs positive dims, got %dx%d", w, h)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b, err := builderFor(w*h, cfg, rng)
	if err != nil {
		return nil, err
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			id := int32(y*w + x)
			if x+1 < w {
				if err := b.AddUndirected(id, id+1, cfg.edgeMatrix(rng)); err != nil {
					return nil, err
				}
			}
			if y+1 < h {
				if err := b.AddUndirected(id, id+int32(w), cfg.edgeMatrix(rng)); err != nil {
					return nil, err
				}
			}
		}
	}
	return b.Build()
}

// GraphStream receives a generated graph element by element; it is
// satisfied by mtxbp.StreamWriter, letting generators emit benchmark
// files larger than memory without this package importing the format.
type GraphStream interface {
	WriteNode(prior []float32) error
	WriteEdge(src, dst int32, mat *graph.JointMatrix) error
	Close() error
}

// StreamSynthetic writes a synthetic NxM benchmark directly to a stream
// without materializing the graph — the path used to produce benchmark
// files larger than memory (the paper parses graphs of over 250 million
// edges; nothing in this pipeline ever holds them whole). The emitted
// graph is identical to Synthetic with the same configuration.
func StreamSynthetic(w GraphStream, n, m int, cfg Config) error {
	cfg = cfg.withDefaults()
	if n <= 0 {
		return fmt.Errorf("gen: synthetic graph needs n > 0, got %d", n)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	prior := make([]float32, cfg.States)
	uniform := make([]float32, cfg.States)
	for i := range uniform {
		uniform[i] = 1 / float32(cfg.States)
	}
	for i := 0; i < n; i++ {
		p := uniform
		if !cfg.UniformPriors {
			RandomDistribution(rng, prior)
			p = prior
		}
		if err := w.WriteNode(p); err != nil {
			return err
		}
	}
	for i := 0; i < m; i++ {
		src := int32(rng.Intn(n))
		dst := int32(rng.Intn(n))
		if n > 1 {
			for dst == src {
				dst = int32(rng.Intn(n))
			}
		}
		if err := w.WriteEdge(src, dst, cfg.edgeMatrix(rng)); err != nil {
			return err
		}
	}
	return w.Close()
}
