package gen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"credo/internal/graph"
)

func TestSynthetic(t *testing.T) {
	g, err := Synthetic(100, 400, Config{Seed: 1, States: 2})
	if err != nil {
		t.Fatalf("Synthetic: %v", err)
	}
	if g.NumNodes != 100 || g.NumEdges != 400 {
		t.Fatalf("got %d/%d, want 100/400", g.NumNodes, g.NumEdges)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for e := 0; e < g.NumEdges; e++ {
		if g.EdgeSrc[e] == g.EdgeDst[e] {
			t.Fatalf("edge %d is a self-loop", e)
		}
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a, err := Synthetic(50, 200, Config{Seed: 7, States: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthetic(50, 200, Config{Seed: 7, States: 3})
	if err != nil {
		t.Fatal(err)
	}
	for e := range a.EdgeSrc {
		if a.EdgeSrc[e] != b.EdgeSrc[e] || a.EdgeDst[e] != b.EdgeDst[e] {
			t.Fatalf("edge %d differs across runs with same seed", e)
		}
	}
	for i := range a.Priors {
		if a.Priors[i] != b.Priors[i] {
			t.Fatalf("prior %d differs across runs with same seed", i)
		}
	}
	c, err := Synthetic(50, 200, Config{Seed: 8, States: 3})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for e := range a.EdgeSrc {
		if a.EdgeSrc[e] != c.EdgeSrc[e] || a.EdgeDst[e] != c.EdgeDst[e] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical edge lists")
	}
}

func TestSyntheticShared(t *testing.T) {
	g, err := Synthetic(20, 80, Config{Seed: 1, States: 3, Shared: true})
	if err != nil {
		t.Fatal(err)
	}
	if !g.SharedMatrix() {
		t.Fatal("expected shared matrix mode")
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestSyntheticErrors(t *testing.T) {
	if _, err := Synthetic(0, 10, Config{}); err == nil {
		t.Error("n=0: want error")
	}
}

func TestKronecker(t *testing.T) {
	g, err := Kronecker(8, 4, Config{Seed: 3, States: 2})
	if err != nil {
		t.Fatalf("Kronecker: %v", err)
	}
	if g.NumNodes != 256 || g.NumEdges != 1024 {
		t.Fatalf("got %d/%d, want 256/1024", g.NumNodes, g.NumEdges)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Kronecker graphs are heavy-tailed: skew far below a regular graph's.
	md := g.Stats()
	if md.Skew() > 0.5 {
		t.Errorf("kronecker skew = %v; expected heavy tail (< 0.5)", md.Skew())
	}
	if _, err := Kronecker(0, 4, Config{}); err == nil {
		t.Error("scale=0: want error")
	}
	if _, err := Kronecker(31, 4, Config{}); err == nil {
		t.Error("scale=31: want error")
	}
}

func TestPowerLaw(t *testing.T) {
	g, err := PowerLaw(500, 2500, Config{Seed: 5, States: 2})
	if err != nil {
		t.Fatalf("PowerLaw: %v", err)
	}
	if g.NumNodes != 500 || g.NumEdges != 2500 {
		t.Fatalf("got %d/%d, want 500/2500", g.NumNodes, g.NumEdges)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	md := g.Stats()
	// Preferential attachment concentrates in-degree on early nodes.
	if md.MaxInDegree < 3*int(math.Ceil(md.AvgInDegree)) {
		t.Errorf("max in-degree %d not heavy-tailed vs avg %.2f", md.MaxInDegree, md.AvgInDegree)
	}
	if _, err := PowerLaw(1, 5, Config{}); err == nil {
		t.Error("n=1: want error")
	}
}

func TestTree(t *testing.T) {
	g, err := Tree(15, 2, Config{Seed: 2, States: 2})
	if err != nil {
		t.Fatalf("Tree: %v", err)
	}
	// 14 undirected links -> 28 directed edges.
	if g.NumNodes != 15 || g.NumEdges != 28 {
		t.Fatalf("got %d/%d, want 15/28", g.NumNodes, g.NumEdges)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Root has no parent: in-degree equals its child count (2).
	if d := g.InDegree(0); d != 2 {
		t.Errorf("root in-degree = %d, want 2", d)
	}
	if _, err := Tree(0, 2, Config{}); err == nil {
		t.Error("n=0: want error")
	}
}

func TestGrid(t *testing.T) {
	g, err := Grid(4, 3, Config{Seed: 2, States: 2})
	if err != nil {
		t.Fatalf("Grid: %v", err)
	}
	// Links: 3*3 horizontal + 4*2 vertical = 17 -> 34 directed.
	if g.NumNodes != 12 || g.NumEdges != 34 {
		t.Fatalf("got %d/%d, want 12/34", g.NumNodes, g.NumEdges)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Interior node (1,1) id 5 has 4 neighbors in each direction.
	if d := g.InDegree(5); d != 4 {
		t.Errorf("interior in-degree = %d, want 4", d)
	}
	if _, err := Grid(0, 3, Config{}); err == nil {
		t.Error("w=0: want error")
	}
}

func TestRandomJointMatrixKeep(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, states := range []int{2, 3, 8, 32} {
		m := RandomJointMatrix(rng, states, 0.8)
		if err := m.Validate(); err != nil {
			t.Fatalf("states=%d: %v", states, err)
		}
		for i := 0; i < states; i++ {
			if d := m.At(i, i); math.Abs(float64(d)-0.8) > 1e-3 {
				t.Errorf("states=%d row %d diagonal = %v, want 0.8", states, i, d)
			}
		}
	}
}

// TestGeneratorsProduceValidDistributions is a property test: any seed and
// belief width yields normalized priors everywhere.
func TestGeneratorsProduceValidDistributions(t *testing.T) {
	f := func(seed int64, statesRaw uint8) bool {
		states := 2 + int(statesRaw)%(graph.MaxStates-1)
		g, err := Synthetic(30, 90, Config{Seed: seed, States: states})
		if err != nil {
			return false
		}
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
