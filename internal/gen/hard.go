package gen

import (
	"fmt"
	"math/rand"

	"credo/internal/graph"
)

// The adversarial generators below produce the topologies vanilla loopy BP
// is known to dislike — the graphs the unique-fixpoint corpus had to
// exclude. All three emit undirected links (both directed edges per link),
// so every edge has a reverse partner and the cyclic echo the Circular-BP
// correction targets is actually present.
//
//   - DenseER: dense Erdős–Rényi with strong uniform coupling. Short loops
//     everywhere; synchronous sweeps amplify feedback until beliefs
//     oscillate.
//   - FrustratedGrid: a lattice whose links are randomly attractive or
//     repulsive. Odd loops cannot satisfy all their couplings
//     (frustration, the classic spin-glass failure mode of BP).
//   - HubSkew: a few fully-interconnected hubs carrying many leaves. The
//     hub clique recirculates every perturbation, and the degree skew
//     concentrates it.

// repelKeep returns the diagonal mass of the repulsive counterpart of an
// attractive coupling with diagonal mass keep: the complement spread over
// the off-diagonal states, i.e. same-state mass (1−keep)/(s−1)·…
// normalized so that a keep of 0.95 at two states flips to 0.05.
func repelKeep(states int, keep float32) float32 {
	if states <= 1 {
		return keep
	}
	return (1 - keep) / float32(states-1)
}

// DenseER generates a dense Erdős–Rényi multigraph: n nodes and m
// undirected links between uniformly random distinct pairs, every link
// attractively coupled with diagonal mass cfg.Keep. With Keep near 1 and
// average degree well past the tree-like regime, vanilla synchronous BP
// oscillates.
func DenseER(n, m int, cfg Config) (*graph.Graph, error) {
	cfg = cfg.withDefaults()
	if n < 2 {
		return nil, fmt.Errorf("gen: dense ER needs n >= 2, got %d", n)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b, err := builderFor(n, cfg, rng)
	if err != nil {
		return nil, err
	}
	for i := 0; i < m; i++ {
		src := int32(rng.Intn(n))
		dst := int32(rng.Intn(n))
		for dst == src {
			dst = int32(rng.Intn(n))
		}
		var mat *graph.JointMatrix
		if !cfg.Shared {
			jm := graph.DiagonalJointMatrix(cfg.States, cfg.Keep)
			mat = &jm
		}
		if err := b.AddUndirected(src, dst, mat); err != nil {
			return nil, err
		}
	}
	return b.Build()
}

// FrustratedGrid generates a w×h lattice whose links are attractive
// (diagonal mass cfg.Keep) with probability 1−flip and repulsive (the
// complementary mass) with probability flip. Plaquettes mixing signs are
// frustrated: no joint state satisfies every link, and vanilla BP chases
// the contradiction instead of converging. Shared-matrix mode cannot
// express per-link signs and is rejected.
func FrustratedGrid(w, h int, flip float64, cfg Config) (*graph.Graph, error) {
	cfg = cfg.withDefaults()
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("gen: frustrated grid needs positive dims, got %dx%d", w, h)
	}
	if cfg.Shared {
		return nil, fmt.Errorf("gen: frustrated grid needs per-edge matrices (Shared unsupported)")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b, err := builderFor(w*h, cfg, rng)
	if err != nil {
		return nil, err
	}
	link := func(a, bNode int32) error {
		keep := cfg.Keep
		if rng.Float64() < flip {
			keep = repelKeep(cfg.States, cfg.Keep)
		}
		jm := graph.DiagonalJointMatrix(cfg.States, keep)
		return b.AddUndirected(a, bNode, &jm)
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			id := int32(y*w + x)
			if x+1 < w {
				if err := link(id, id+1); err != nil {
					return nil, err
				}
			}
			if y+1 < h {
				if err := link(id, id+int32(w)); err != nil {
					return nil, err
				}
			}
		}
	}
	return b.Build()
}

// HubSkew generates a high-degree-skew graph: hubs fully interconnected
// pairwise plus leaves each attached to one hub round-robin, every link
// attractively coupled with diagonal mass cfg.Keep. The hub clique
// recirculates perturbations through short loops while the leaves multiply
// each hub's degree — the degree-imbalance/skew profile of the paper's
// social benchmarks pushed into BP's unstable regime.
func HubSkew(hubs, leaves int, cfg Config) (*graph.Graph, error) {
	cfg = cfg.withDefaults()
	if hubs < 2 {
		return nil, fmt.Errorf("gen: hub-skew graph needs hubs >= 2, got %d", hubs)
	}
	if leaves < 0 {
		return nil, fmt.Errorf("gen: hub-skew graph needs leaves >= 0, got %d", leaves)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b, err := builderFor(hubs+leaves, cfg, rng)
	if err != nil {
		return nil, err
	}
	link := func(a, bNode int32) error {
		var mat *graph.JointMatrix
		if !cfg.Shared {
			jm := graph.DiagonalJointMatrix(cfg.States, cfg.Keep)
			mat = &jm
		}
		return b.AddUndirected(a, bNode, mat)
	}
	for i := 0; i < hubs; i++ {
		for j := i + 1; j < hubs; j++ {
			if err := link(int32(i), int32(j)); err != nil {
				return nil, err
			}
		}
	}
	for l := 0; l < leaves; l++ {
		if err := link(int32(l%hubs), int32(hubs+l)); err != nil {
			return nil, err
		}
	}
	return b.Build()
}
