// Package viz renders terminal bar charts for the experiment harness, so
// credobench regenerates the paper's figures as figures — log-scale
// grouped bars for the runtime plots, plain bars for importances and
// speedups — with no dependencies beyond the standard library.
package viz

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Bar is one labeled value.
type Bar struct {
	Label string
	Value float64
}

// Group is one labeled cluster of values (one per series).
type Group struct {
	Label  string
	Values []float64
}

const (
	chartWidth = 48
	barRune    = '█'
)

// sparkRunes are the eight block heights of a terminal sparkline.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as one line of block characters scaled
// linearly between the series' minimum and maximum. Empty input renders
// as the empty string; a flat series renders at the lowest block.
func Sparkline(values []float64) string {
	return sparkline(values, func(v float64) (float64, bool) { return v, true })
}

// LogSparkline renders values on a log10 scale — the right shape for
// convergence residuals, which fall across decades. Non-positive values
// render as a space.
func LogSparkline(values []float64) string {
	return sparkline(values, func(v float64) (float64, bool) {
		if v <= 0 {
			return 0, false
		}
		return math.Log10(v), true
	})
}

// sparkline maps each value through scale and renders the in-domain
// points across the eight block heights.
func sparkline(values []float64, scale func(float64) (float64, bool)) string {
	if len(values) == 0 {
		return ""
	}
	minv, maxv := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if s, ok := scale(v); ok {
			minv = math.Min(minv, s)
			maxv = math.Max(maxv, s)
		}
	}
	out := make([]rune, len(values))
	span := maxv - minv
	for i, v := range values {
		s, ok := scale(v)
		if !ok || math.IsInf(minv, 1) {
			out[i] = ' '
			continue
		}
		idx := 0
		if span > 0 {
			idx = int(math.Round((s - minv) / span * float64(len(sparkRunes)-1)))
		}
		out[i] = sparkRunes[idx]
	}
	return string(out)
}

// BarChart renders horizontal bars scaled linearly to the maximum value.
func BarChart(w io.Writer, title, unit string, bars []Bar) {
	if title != "" {
		fmt.Fprintln(w, title)
	}
	maxv := 0.0
	labelW := 0
	for _, b := range bars {
		if b.Value > maxv {
			maxv = b.Value
		}
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
	}
	for _, b := range bars {
		n := 0
		if maxv > 0 {
			n = int(math.Round(b.Value / maxv * chartWidth))
		}
		if n < 1 && b.Value > 0 {
			n = 1
		}
		fmt.Fprintf(w, "%-*s |%-*s %.4g%s\n", labelW, b.Label, chartWidth, strings.Repeat(string(barRune), n), b.Value, unit)
	}
}

// LogBarChart renders horizontal bars on a log10 scale — the right shape
// for the paper's runtime figures, which span microseconds to minutes.
// Non-positive values render as empty bars.
func LogBarChart(w io.Writer, title, unit string, bars []Bar) {
	if title != "" {
		fmt.Fprintln(w, title)
	}
	minv, maxv := math.Inf(1), math.Inf(-1)
	labelW := 0
	for _, b := range bars {
		if b.Value > 0 {
			minv = math.Min(minv, b.Value)
			maxv = math.Max(maxv, b.Value)
		}
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
	}
	span := math.Log10(maxv) - math.Log10(minv)
	for _, b := range bars {
		n := 0
		if b.Value > 0 {
			if span <= 0 {
				n = chartWidth
			} else {
				n = 1 + int(math.Round((math.Log10(b.Value)-math.Log10(minv))/span*float64(chartWidth-1)))
			}
		}
		fmt.Fprintf(w, "%-*s |%-*s %.4g%s\n", labelW, b.Label, chartWidth, strings.Repeat(string(barRune), n), b.Value, unit)
	}
	if !math.IsInf(minv, 1) {
		fmt.Fprintf(w, "%-*s  (log scale: %.3g%s .. %.3g%s)\n", labelW, "", minv, unit, maxv, unit)
	}
}

// GroupedLogBars renders one log-scale bar per series within each group —
// the shape of Figure 7 (four implementations per benchmark graph).
func GroupedLogBars(w io.Writer, title, unit string, seriesNames []string, groups []Group) {
	if title != "" {
		fmt.Fprintln(w, title)
	}
	minv, maxv := math.Inf(1), math.Inf(-1)
	labelW := 0
	for _, g := range groups {
		for _, v := range g.Values {
			if v > 0 {
				minv = math.Min(minv, v)
				maxv = math.Max(maxv, v)
			}
		}
		if len(g.Label) > labelW {
			labelW = len(g.Label)
		}
	}
	seriesW := 0
	for _, s := range seriesNames {
		if len(s) > seriesW {
			seriesW = len(s)
		}
	}
	span := math.Log10(maxv) - math.Log10(minv)
	for _, g := range groups {
		fmt.Fprintf(w, "%-*s\n", labelW, g.Label)
		for i, v := range g.Values {
			name := ""
			if i < len(seriesNames) {
				name = seriesNames[i]
			}
			n := 0
			if v > 0 {
				if span <= 0 {
					n = chartWidth
				} else {
					n = 1 + int(math.Round((math.Log10(v)-math.Log10(minv))/span*float64(chartWidth-1)))
				}
			}
			val := "-"
			if v > 0 {
				val = fmt.Sprintf("%.4g%s", v, unit)
			}
			fmt.Fprintf(w, "  %-*s |%-*s %s\n", seriesW, name, chartWidth, strings.Repeat(string(barRune), n), val)
		}
	}
	if !math.IsInf(minv, 1) {
		fmt.Fprintf(w, "(log scale: %.3g%s .. %.3g%s)\n", minv, unit, maxv, unit)
	}
}
