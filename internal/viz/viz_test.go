package viz

import (
	"bytes"
	"strings"
	"testing"
)

func TestBarChart(t *testing.T) {
	var buf bytes.Buffer
	BarChart(&buf, "title", "x", []Bar{{"a", 10}, {"bb", 5}, {"c", 0}})
	out := buf.String()
	if !strings.HasPrefix(out, "title\n") {
		t.Errorf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	barLen := func(line string) int { return strings.Count(line, "█") }
	if barLen(lines[1]) != 48 {
		t.Errorf("max bar length %d, want 48", barLen(lines[1]))
	}
	if barLen(lines[2]) != 24 {
		t.Errorf("half bar length %d, want 24", barLen(lines[2]))
	}
	if barLen(lines[3]) != 0 {
		t.Errorf("zero bar length %d, want 0", barLen(lines[3]))
	}
	// Labels align.
	if !strings.HasPrefix(lines[1], "a  |") || !strings.HasPrefix(lines[2], "bb |") {
		t.Errorf("labels misaligned:\n%s", out)
	}
}

func TestLogBarChart(t *testing.T) {
	var buf bytes.Buffer
	LogBarChart(&buf, "", "s", []Bar{{"small", 1e-6}, {"mid", 1e-3}, {"big", 1}})
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 { // 3 bars + scale note
		t.Fatalf("got %d lines:\n%s", len(lines), buf.String())
	}
	count := func(line string) int { return strings.Count(line, "█") }
	if !(count(lines[0]) < count(lines[1]) && count(lines[1]) < count(lines[2])) {
		t.Errorf("log bars not monotone: %d %d %d", count(lines[0]), count(lines[1]), count(lines[2]))
	}
	// Mid value is geometrically centered: roughly half the width.
	if c := count(lines[1]); c < 20 || c > 29 {
		t.Errorf("mid bar %d, want ≈24 on log scale", c)
	}
	if !strings.Contains(lines[3], "log scale") {
		t.Errorf("missing scale note: %s", lines[3])
	}
}

func TestLogBarChartDegenerate(t *testing.T) {
	var buf bytes.Buffer
	LogBarChart(&buf, "", "", []Bar{{"only", 5}, {"zero", 0}})
	out := buf.String()
	if !strings.Contains(out, "only") || !strings.Contains(out, "zero") {
		t.Errorf("bars missing:\n%s", out)
	}
	// Equal min and max: full-width bar, no panic.
	if strings.Count(strings.Split(out, "\n")[0], "█") != 48 {
		t.Errorf("single-value bar not full width:\n%s", out)
	}
}

func TestGroupedLogBars(t *testing.T) {
	var buf bytes.Buffer
	GroupedLogBars(&buf, "fig", "s", []string{"C Edge", "CUDA Node"}, []Group{
		{Label: "g1", Values: []float64{1, 0.01}},
		{Label: "g2", Values: []float64{10, 0}},
	})
	out := buf.String()
	for _, want := range []string{"fig", "g1", "g2", "C Edge", "CUDA Node", "log scale"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	// The zero entry renders "-".
	if !strings.Contains(out, " -\n") {
		t.Errorf("zero value not dashed:\n%s", out)
	}
}
