package credo

// Integration tests across the full pipeline: generate → serialize → parse
// → extract features → select implementation → propagate → validate, for
// each of the paper's three use cases, plus the cross-format journey BIF →
// mtxbp → engine.

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"credo/internal/bench"
	"credo/internal/bif"
	"credo/internal/bp"
	"credo/internal/core"
	"credo/internal/features"
	"credo/internal/gen"
	"credo/internal/ml"
	"credo/internal/mtxbp"
)

// TestPipelinePerUseCase runs the whole stack for the binary, virus and
// image-correction belief widths.
func TestPipelinePerUseCase(t *testing.T) {
	for _, uc := range bench.UseCases() {
		t.Run(uc.Name, func(t *testing.T) {
			g, err := gen.PowerLaw(400, 1600, gen.Config{Seed: 11, States: uc.States, Shared: true})
			if err != nil {
				t.Fatal(err)
			}
			// Serialize through the streaming format (compressed).
			dir := t.TempDir()
			np := filepath.Join(dir, "g.nodes.mtx.gz")
			ep := filepath.Join(dir, "g.edges.mtx.gz")
			if err := mtxbp.WriteFiles(np, ep, g); err != nil {
				t.Fatal(err)
			}
			loaded, err := mtxbp.ReadFiles(np, ep)
			if err != nil {
				t.Fatal(err)
			}
			// Observe and propagate through the engine.
			if err := loaded.Observe(0, uc.States-1); err != nil {
				t.Fatal(err)
			}
			var eng core.Engine
			rep, err := eng.Run(loaded)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Result.Converged {
				t.Errorf("did not converge: %+v", rep.Result)
			}
			if err := loaded.Validate(); err != nil {
				t.Errorf("invalid beliefs after pipeline: %v", err)
			}
			// Feature extraction stays finite and the right shape.
			feat := features.FromGraph(loaded)
			if len(feat) != features.Count {
				t.Errorf("feature vector length %d", len(feat))
			}
		})
	}
}

// TestPipelineBIFToEngine follows a legacy BIF document into the engine.
func TestPipelineBIFToEngine(t *testing.T) {
	src := `network chain { }
variable a { type discrete [ 2 ] { y, n }; }
variable b { type discrete [ 2 ] { y, n }; }
variable c { type discrete [ 2 ] { y, n }; }
probability ( a ) { table 0.9, 0.1; }
probability ( b | a ) { ( y ) 0.8, 0.2; ( n ) 0.3, 0.7; }
probability ( c | b ) { ( y ) 0.8, 0.2; ( n ) 0.3, 0.7; }
`
	g, err := bif.Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	// Convert through mtxbp and back — structure preserved.
	var nodes, edges bytes.Buffer
	if err := mtxbp.Write(&nodes, &edges, g); err != nil {
		t.Fatal(err)
	}
	g2, err := mtxbp.Read(&nodes, &edges)
	if err != nil {
		t.Fatal(err)
	}
	var eng core.Engine
	rep, err := eng.Run(g2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Implementation != core.CEdge {
		t.Errorf("3-node chain selected %v", rep.Implementation)
	}
	// Evidence at a strongly pushes c toward y.
	if b := g2.Belief(2); b[0] <= 0.5 {
		t.Errorf("chain posterior = %v; expected state y favored", b)
	}
}

// TestPipelineTrainedSelectorEndToEnd builds a miniature dataset, trains
// the paper's forest, and routes new graphs through the trained selector.
func TestPipelineTrainedSelectorEndToEnd(t *testing.T) {
	tier := bench.Tier{Name: "tiny", MaxNodes: 300, MaxEdges: 1500}
	cfg := bench.DefaultConfig(tier)
	specs := []bench.GraphSpec{}
	for _, abbrev := range []string{"10x40", "1k4k", "100kx400k", "2Mx8M", "GO", "K16"} {
		for _, s := range bench.Table1() {
			if s.Abbrev == abbrev {
				specs = append(specs, s)
			}
		}
	}
	ds, err := bench.BuildDataset(specs, bench.UseCases(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	forest := &ml.RandomForest{Trees: 14, MaxDepth: 6, Seed: 1}
	if err := forest.Fit(ds.X, ds.Y); err != nil {
		t.Fatal(err)
	}
	eng := core.Engine{
		Selector: core.Selector{Classifier: forest},
		Options:  bp.Options{WorkQueue: true},
	}
	small, err := gen.Synthetic(150, 600, gen.Config{Seed: 3, States: 2, Shared: true})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run(small)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Implementation.IsCUDA() {
		t.Errorf("150-node graph routed to %v", rep.Implementation)
	}
	if !rep.Result.Converged {
		t.Error("engine run did not converge")
	}
}

// TestScaleSmoke propagates through a 100k-node / 400k-edge graph — the
// paper's crossover scale — end to end with the work queues on. Skipped in
// -short mode.
func TestScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("large-graph smoke test skipped in -short mode")
	}
	g, err := gen.Synthetic(100_000, 400_000, gen.Config{Seed: 42, States: 2, Shared: true})
	if err != nil {
		t.Fatal(err)
	}
	_ = g.Observe(0, 1)
	res := bp.RunEdge(g, bp.Options{WorkQueue: true})
	if !res.Converged {
		t.Fatalf("100k-node graph did not converge: %+v", res)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	md := g.Stats()
	if md.NumNodes != 100_000 || md.NumEdges != 400_000 {
		t.Fatalf("stats %d/%d", md.NumNodes, md.NumEdges)
	}
}
