module credo

go 1.22
