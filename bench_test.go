package credo

// One benchmark per paper table and figure (DESIGN.md §5), each printing
// the same rows or series the paper reports, plus raw engine benchmarks
// measuring real wall time of the Go implementations.
//
//	go test -bench=. -benchmem
//
// The experiment benchmarks run the full harness at the CI tier; use
// cmd/credobench for larger tiers.

import (
	"io"
	"testing"

	"credo/internal/bench"
	"credo/internal/bp"
	"credo/internal/cudabp"
	"credo/internal/gen"
	"credo/internal/gpusim"
	"credo/internal/ompbp"
)

func benchConfig() bench.Config {
	return bench.DefaultConfig(bench.TierCI)
}

// runExperiment executes one harness experiment per benchmark iteration.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	exp, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	cfg := benchConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := exp.Run(io.Discard, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Suite regenerates Table 1 (the benchmark graph suite).
func BenchmarkTable1Suite(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkAlgorithmComparison regenerates §2.1.1 (traditional vs loopy).
func BenchmarkAlgorithmComparison(b *testing.B) { runExperiment(b, "algocmp") }

// BenchmarkSharedMatrix regenerates §2.2 (shared joint matrix refinement).
func BenchmarkSharedMatrix(b *testing.B) { runExperiment(b, "sharedmatrix") }

// BenchmarkParsers regenerates §3.2.1 (BIF vs XML-BIF vs mtxbp).
func BenchmarkParsers(b *testing.B) { runExperiment(b, "parsers") }

// BenchmarkAoSvsSoA regenerates §3.4 (data layout cache behaviour).
func BenchmarkAoSvsSoA(b *testing.B) { runExperiment(b, "aossoa") }

// BenchmarkOpenMP regenerates §2.4 (OpenMP/OpenACC parallelization).
func BenchmarkOpenMP(b *testing.B) { runExperiment(b, "openmp") }

// BenchmarkFig7Runtimes regenerates Figure 7 (C and CUDA runtimes).
func BenchmarkFig7Runtimes(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8SpeedupByBeliefs regenerates Figure 8 (speedup PDFs).
func BenchmarkFig8SpeedupByBeliefs(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9WorkQueues regenerates Figure 9 (work-queue speedups).
func BenchmarkFig9WorkQueues(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig4Covariances regenerates Figure 4 (feature covariances).
func BenchmarkFig4Covariances(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFig5Importances regenerates Figure 5 (feature importances).
func BenchmarkFig5Importances(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFig6DecisionTree regenerates Figure 6 (depth-2 tree).
func BenchmarkFig6DecisionTree(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig10Classifiers regenerates Figure 10 (classifier comparison).
func BenchmarkFig10Classifiers(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFig11Credo regenerates Figure 11 (Credo vs C Edge, Pascal).
func BenchmarkFig11Credo(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkFig12Volta regenerates Figure 12 (portability to Volta).
func BenchmarkFig12Volta(b *testing.B) { runExperiment(b, "fig12") }

// BenchmarkRelaxScheduling regenerates the relaxed-priority residual
// scheduling experiment (message updates to convergence vs synchronous
// sweeps, plus modelled relax-vs-pool time).
func BenchmarkRelaxScheduling(b *testing.B) { runExperiment(b, "relax") }

// --- raw engine wall-time benchmarks ---

func benchGraph(b *testing.B, states int) *Graph {
	b.Helper()
	g, err := gen.Synthetic(5000, 20000, gen.Config{Seed: 1, States: states, Shared: true})
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkEngineCEdge measures the sequential per-edge engine.
func BenchmarkEngineCEdge(b *testing.B) {
	for _, states := range []int{2, 32} {
		b.Run(caseName(states), func(b *testing.B) {
			g := benchGraph(b, states)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := g.Clone()
				bp.RunEdge(c, bp.Options{WorkQueue: true})
			}
		})
	}
}

// BenchmarkEngineCNode measures the sequential per-node engine.
func BenchmarkEngineCNode(b *testing.B) {
	for _, states := range []int{2, 32} {
		b.Run(caseName(states), func(b *testing.B) {
			g := benchGraph(b, states)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := g.Clone()
				bp.RunNode(c, bp.Options{WorkQueue: true})
			}
		})
	}
}

// BenchmarkEngineCUDANode measures the simulated-device per-node engine
// (real goroutine parallelism; reported time is wall time, not SimTime).
func BenchmarkEngineCUDANode(b *testing.B) {
	g := benchGraph(b, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := g.Clone()
		dev := gpusim.NewDevice(gpusim.Pascal())
		if _, err := cudabp.RunNode(c, dev, cudabp.Options{Options: bp.Options{WorkQueue: true}}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineOpenMP measures the goroutine-parallel edge engine.
func BenchmarkEngineOpenMP(b *testing.B) {
	g := benchGraph(b, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := g.Clone()
		ompbp.RunEdge(c, ompbp.Options{Threads: 4})
	}
}

func caseName(states int) string {
	switch states {
	case 2:
		return "binary"
	case 3:
		return "virus"
	default:
		return "image32"
	}
}
