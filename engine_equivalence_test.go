package credo

// TestEngineEquivalence is the top-level cross-engine differential check:
// every BP engine in the repository (traditional, node, edge, residual,
// ompbp, poolbp, relaxbp) runs the shared internal/enginetest corpus —
// the BIF testdata networks as MRFs plus seeded graphs from each
// generator family — and every fixpoint engine must land within the
// per-case tolerance of the sequential per-node oracle. The table runs at
// several team sizes so the parallel engines are exercised both on their
// sequential fast path and with real worker teams.

import (
	"fmt"
	"testing"

	"credo/internal/enginetest"
)

func TestEngineEquivalence(t *testing.T) {
	for _, workers := range []int{1, 4} {
		engines := enginetest.Engines(workers)
		for _, c := range enginetest.Corpus() {
			c := c
			t.Run(fmt.Sprintf("workers=%d/%s", workers, c.Name), func(t *testing.T) {
				for _, err := range enginetest.VerifyCase(c, engines) {
					t.Error(err)
				}
			})
		}
	}
}
