// Command credoconvert converts belief networks between the supported
// formats: the legacy BIF / XML-BIF documents and the streaming mtxbp
// pair (§3.2). Its main job is migrating Bayesian Network Repository
// style inputs into the format Credo can stream at scale.
//
//	credoconvert -in net.bif -out net                 # -> net.nodes.mtx + net.edges.mtx
//	credoconvert -in net.xml -out net -compress      # -> .mtx.gz pair
//	credoconvert -nodes g.nodes.mtx -edges g.edges.mtx -out g -format xmlbif
//
// BIF-family outputs require every node to have at most one parent (the
// shape of the repository's tree networks); conversion fails otherwise.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"credo/internal/bif"
	"credo/internal/graph"
	"credo/internal/mtxbp"
	"credo/internal/xmlbif"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "credoconvert:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("credoconvert", flag.ContinueOnError)
	in := fs.String("in", "", "input file (.bif, .xml/.xmlbif)")
	nodes := fs.String("nodes", "", "input mtxbp node file (with -edges)")
	edges := fs.String("edges", "", "input mtxbp edge file (with -nodes)")
	outPrefix := fs.String("out", "", "output path prefix")
	format := fs.String("format", "mtx", "output format: mtx, bif, xmlbif")
	compress := fs.Bool("compress", false, "gzip mtx output")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *outPrefix == "" {
		return fmt.Errorf("need -out")
	}

	g, err := load(*in, *nodes, *edges)
	if err != nil {
		return err
	}

	switch *format {
	case "mtx":
		suffix := ".mtx"
		if *compress {
			suffix += ".gz"
		}
		np, ep := *outPrefix+".nodes"+suffix, *outPrefix+".edges"+suffix
		if err := mtxbp.WriteFiles(np, ep, g); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s and %s (%d nodes, %d edges, %d beliefs)\n",
			np, ep, g.NumNodes, g.NumEdges, g.States)
	case "bif":
		return writeDoc(out, *outPrefix+".bif", g, bif.Write)
	case "xmlbif":
		return writeDoc(out, *outPrefix+".xml", g, xmlbif.Write)
	default:
		return fmt.Errorf("unknown output format %q", *format)
	}
	return nil
}

func load(in, nodes, edges string) (*graph.Graph, error) {
	switch {
	case in != "" && strings.HasSuffix(in, ".bif"):
		return bif.ParseFile(in)
	case in != "" && (strings.HasSuffix(in, ".xml") || strings.HasSuffix(in, ".xmlbif")):
		return xmlbif.ParseFile(in)
	case in != "":
		return nil, fmt.Errorf("cannot infer format of %q (want .bif, .xml or .xmlbif)", in)
	case nodes != "" && edges != "":
		return mtxbp.ReadFiles(nodes, edges)
	default:
		return nil, fmt.Errorf("need -in or -nodes/-edges")
	}
}

func writeDoc(out io.Writer, path string, g *graph.Graph, write func(io.Writer, *graph.Graph) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f, g); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s (%d nodes, %d edges, %d beliefs)\n", path, g.NumNodes, g.NumEdges, g.States)
	return nil
}
