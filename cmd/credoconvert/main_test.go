package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"credo/internal/bif"
	"credo/internal/gen"
	"credo/internal/mtxbp"
	"credo/internal/xmlbif"
)

const sampleBIF = `network t { }
variable a { type discrete [ 2 ] { y, n }; }
variable b { type discrete [ 2 ] { y, n }; }
probability ( a ) { table 0.3, 0.7; }
probability ( b | a ) { ( y ) 0.9, 0.1; ( n ) 0.2, 0.8; }
`

func TestBIFToMTX(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "net.bif")
	if err := os.WriteFile(in, []byte(sampleBIF), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "net")
	var buf bytes.Buffer
	if err := run([]string{"-in", in, "-out", out}, &buf); err != nil {
		t.Fatal(err)
	}
	g, err := mtxbp.ReadFiles(out+".nodes.mtx", out+".edges.mtx")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes != 2 || g.NumEdges != 1 {
		t.Fatalf("converted shape %d/%d", g.NumNodes, g.NumEdges)
	}
	if g.Matrix(0).At(0, 0) != 0.9 {
		t.Errorf("CPT lost in conversion: %v", g.Matrix(0).At(0, 0))
	}
}

func TestMTXToXMLBIFAndBack(t *testing.T) {
	dir := t.TempDir()
	g, err := gen.DirectedTree(15, 2, gen.Config{Seed: 1, States: 2, UniformPriors: true})
	if err != nil {
		t.Fatal(err)
	}
	np, ep := filepath.Join(dir, "g.nodes.mtx"), filepath.Join(dir, "g.edges.mtx")
	if err := mtxbp.WriteFiles(np, ep, g); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "g")
	if err := run([]string{"-nodes", np, "-edges", ep, "-out", out, "-format", "xmlbif"}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	got, err := xmlbif.ParseFile(out + ".xml")
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes != 15 || got.NumEdges != 14 {
		t.Fatalf("xml round trip shape %d/%d", got.NumNodes, got.NumEdges)
	}
	// And back to BIF.
	if err := run([]string{"-nodes", np, "-edges", ep, "-out", out, "-format", "bif"}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if _, err := bif.ParseFile(out + ".bif"); err != nil {
		t.Fatal(err)
	}
}

func TestCompressedOutput(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "net.bif")
	if err := os.WriteFile(in, []byte(sampleBIF), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "net")
	var buf bytes.Buffer
	if err := run([]string{"-in", in, "-out", out, "-compress"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), ".mtx.gz") {
		t.Errorf("output not compressed: %s", buf.String())
	}
	if _, err := mtxbp.ReadFiles(out+".nodes.mtx.gz", out+".edges.mtx.gz"); err != nil {
		t.Fatal(err)
	}
}

func TestConvertErrors(t *testing.T) {
	dir := t.TempDir()
	multi := filepath.Join(dir, "m")
	// A multi-parent graph cannot round-trip to BIF.
	g, err := gen.Synthetic(10, 40, gen.Config{Seed: 1, States: 2})
	if err != nil {
		t.Fatal(err)
	}
	np, ep := multi+".nodes.mtx", multi+".edges.mtx"
	if err := mtxbp.WriteFiles(np, ep, g); err != nil {
		t.Fatal(err)
	}
	cases := [][]string{
		{},
		{"-in", filepath.Join(dir, "missing.bif"), "-out", multi},
		{"-in", filepath.Join(dir, "noext"), "-out", multi},
		{"-in", np, "-out", multi}, // .mtx is not a -in format
		{"-nodes", np, "-edges", ep, "-out", multi, "-format", "bif"},
		{"-nodes", np, "-edges", ep, "-out", multi, "-format", "csv"},
		{"-nodes", np, "-edges", ep},
	}
	for _, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v: want error", args)
		}
	}
}
