package main

import (
	"os"
	"path/filepath"
	"testing"

	"credo/internal/bif"
	"credo/internal/mtxbp"
	"credo/internal/xmlbif"
)

func TestGenerateMTX(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "g")
	if err := run([]string{"-kind", "synthetic", "-n", "100", "-m", "400", "-states", "3", "-out", out}); err != nil {
		t.Fatal(err)
	}
	g, err := mtxbp.ReadFiles(out+".nodes.mtx", out+".edges.mtx")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes != 100 || g.NumEdges != 400 || g.States != 3 {
		t.Fatalf("generated %d/%d/%d", g.NumNodes, g.NumEdges, g.States)
	}
	if !g.SharedMatrix() {
		t.Error("default generation should use the shared matrix")
	}
}

func TestGenerateAllKinds(t *testing.T) {
	dir := t.TempDir()
	for _, kind := range []string{"synthetic", "kron", "powerlaw", "tree", "dirtree", "grid"} {
		out := filepath.Join(dir, kind)
		args := []string{"-kind", kind, "-n", "64", "-m", "200", "-scale", "6", "-edgefactor", "4",
			"-width", "8", "-height", "8", "-out", out}
		if err := run(args); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if _, err := os.Stat(out + ".nodes.mtx"); err != nil {
			t.Errorf("%s: missing output: %v", kind, err)
		}
	}
}

func TestGenerateBIFAndXML(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "t")
	if err := run([]string{"-kind", "dirtree", "-n", "31", "-format", "bif", "-out", out}); err != nil {
		t.Fatal(err)
	}
	g, err := bif.ParseFile(out + ".bif")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes != 31 {
		t.Errorf("BIF round trip: %d nodes", g.NumNodes)
	}
	if err := run([]string{"-kind", "dirtree", "-n", "15", "-format", "xmlbif", "-out", out}); err != nil {
		t.Fatal(err)
	}
	g, err = xmlbif.ParseFile(out + ".xml")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes != 15 {
		t.Errorf("XML-BIF round trip: %d nodes", g.NumNodes)
	}
}

func TestGenerateErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-kind", "mobius"},
		{"-format", "csv"},
		{"-kind", "synthetic", "-n", "0"},
	} {
		if err := run(append(args, "-out", filepath.Join(t.TempDir(), "x"))); err == nil {
			t.Errorf("args %v: want error", args)
		}
	}
}

func TestStreamedGeneration(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "big")
	if err := run([]string{"-kind", "synthetic", "-n", "5000", "-m", "20000", "-stream", "-out", out}); err != nil {
		t.Fatal(err)
	}
	g, err := mtxbp.ReadFiles(out+".nodes.mtx", out+".edges.mtx")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes != 5000 || g.NumEdges != 20000 {
		t.Fatalf("streamed %d/%d", g.NumNodes, g.NumEdges)
	}
	// Streaming is synthetic+mtx only.
	if err := run([]string{"-kind", "kron", "-stream", "-out", out}); err == nil {
		t.Error("streaming kron accepted")
	}
	if err := run([]string{"-kind", "synthetic", "-format", "bif", "-stream", "-out", out}); err == nil {
		t.Error("streaming bif accepted")
	}
}
