// Command credogen generates synthetic belief networks — the workloads of
// the paper's Table 1 benchmark suite — and writes them in the streaming
// mtxbp format (or BIF / XML-BIF for trees).
//
//	credogen -kind synthetic -n 100000 -m 400000 -states 2 -out g
//	credogen -kind kron -scale 16 -edgefactor 44 -states 3 -out k16
//	credogen -kind tree -n 1000 -format bif -out t1000
//
// The mtxbp output is a pair of files <out>.nodes.mtx and <out>.edges.mtx.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"credo/internal/bif"
	"credo/internal/gen"
	"credo/internal/graph"
	"credo/internal/mtxbp"
	"credo/internal/xmlbif"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "credogen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("credogen", flag.ContinueOnError)
	kind := fs.String("kind", "synthetic", "topology: synthetic, kron, powerlaw, tree, dirtree, grid")
	n := fs.Int("n", 1000, "node count (synthetic, powerlaw, tree, dirtree)")
	m := fs.Int("m", 4000, "edge count (synthetic, powerlaw)")
	scale := fs.Int("scale", 16, "kron: log2 of node count")
	edgeFactor := fs.Int("edgefactor", 16, "kron: edges per node")
	branching := fs.Int("branching", 2, "tree branching factor")
	w := fs.Int("width", 32, "grid width")
	h := fs.Int("height", 32, "grid height")
	states := fs.Int("states", 2, "beliefs per node")
	seed := fs.Int64("seed", 1, "generator seed")
	shared := fs.Bool("shared", true, "use one shared joint probability matrix (paper §2.2)")
	keep := fs.Float64("keep", 0.75, "diagonal weight of generated joint matrices")
	format := fs.String("format", "mtx", "output format: mtx, bif, xmlbif")
	stream := fs.Bool("stream", false, "stream the graph straight to disk (synthetic kind, mtx format only; never holds the graph in memory)")
	out := fs.String("out", "graph", "output path prefix")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := gen.Config{
		Seed:   *seed,
		States: *states,
		Shared: *shared,
		Keep:   float32(*keep),
	}
	if *format != "mtx" {
		// BIF-family formats carry matrices per edge.
		cfg.Shared = false
	}

	if *stream {
		if *kind != "synthetic" || *format != "mtx" {
			return fmt.Errorf("-stream supports -kind synthetic with -format mtx")
		}
		return streamSynthetic(*out, *n, *m, cfg)
	}

	var g *graph.Graph
	var err error
	switch *kind {
	case "synthetic":
		g, err = gen.Synthetic(*n, *m, cfg)
	case "kron":
		g, err = gen.Kronecker(*scale, *edgeFactor, cfg)
	case "powerlaw":
		g, err = gen.PowerLaw(*n, *m, cfg)
	case "tree":
		g, err = gen.Tree(*n, *branching, cfg)
	case "dirtree":
		g, err = gen.DirectedTree(*n, *branching, cfg)
	case "grid":
		g, err = gen.Grid(*w, *h, cfg)
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		return err
	}

	switch *format {
	case "mtx":
		np, ep := *out+".nodes.mtx", *out+".edges.mtx"
		if err := mtxbp.WriteFiles(np, ep, g); err != nil {
			return err
		}
		fmt.Printf("wrote %s and %s: %d nodes, %d directed edges, %d beliefs\n",
			np, ep, g.NumNodes, g.NumEdges, g.States)
	case "bif":
		return writeOne(*out+".bif", g, bif.Write)
	case "xmlbif":
		return writeOne(*out+".xml", g, xmlbif.Write)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	return nil
}

// streamSynthetic generates and writes the graph without materializing it.
func streamSynthetic(out string, n, m int, cfg gen.Config) error {
	np, ep := out+".nodes.mtx", out+".edges.mtx"
	nf, err := os.Create(np)
	if err != nil {
		return err
	}
	defer nf.Close()
	ef, err := os.Create(ep)
	if err != nil {
		return err
	}
	defer ef.Close()
	var shared *graph.JointMatrix
	if cfg.Shared {
		m := graph.DiagonalJointMatrix(cfg.States, cfg.Keep)
		shared = &m
	}
	w, err := mtxbp.NewStreamWriter(nf, ef, n, m, cfg.States, shared)
	if err != nil {
		return err
	}
	if err := gen.StreamSynthetic(w, n, m, cfg); err != nil {
		return err
	}
	fmt.Printf("streamed %s and %s: %d nodes, %d directed edges, %d beliefs\n", np, ep, n, m, cfg.States)
	return nil
}

func writeOne(path string, g *graph.Graph, write func(w io.Writer, g *graph.Graph) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f, g); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d nodes, %d directed edges, %d beliefs\n", path, g.NumNodes, g.NumEdges, g.States)
	return nil
}
