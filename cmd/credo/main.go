// Command credo runs belief propagation on a belief network, choosing the
// best implementation for the graph automatically (the Credo engine of the
// paper) or using an explicitly requested one.
//
// Input is the streaming mtxbp format (a node file and an edge file), BIF,
// or XML-BIF:
//
//	credo -nodes g.nodes.mtx -edges g.edges.mtx -observe 3:1 -top 5
//	credo -bif family-out.bif -observe light-on:0
//
// The tool prints the selected implementation, convergence statistics and
// the posterior marginals of the highest-entropy-change nodes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"credo/internal/bif"
	"credo/internal/bp"
	"credo/internal/core"
	"credo/internal/features"
	"credo/internal/gpusim"
	"credo/internal/graph"
	"credo/internal/kernel"
	"credo/internal/ml"
	"credo/internal/mtxbp"
	"credo/internal/telemetry"
	"credo/internal/xmlbif"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "credo:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("credo", flag.ContinueOnError)
	nodesPath := fs.String("nodes", "", "mtxbp node file")
	edgesPath := fs.String("edges", "", "mtxbp edge file")
	bifPath := fs.String("bif", "", "BIF input file")
	xmlPath := fs.String("xmlbif", "", "XML-BIF input file")
	implName := fs.String("impl", "auto", "implementation: auto, cedge, cnode, cudaedge, cudanode, pool, relax")
	engineName := fs.String("engine", "auto", "execution engine: auto (the paper's selection), pool (persistent worker-pool runtime) or relax (relaxed-priority residual runtime)")
	workers := fs.Int("workers", 0, "worker team size for -engine=pool/relax and -impl pool/relax (0 = NumCPU)")
	ingestWorkers := fs.Int("ingest-workers", 0, "parallel chunked ingest fan-out for mtxbp inputs (0 = NumCPU, 1 = sequential; gzip always reads sequentially)")
	gpuName := fs.String("gpu", "pascal", "device profile: pascal or volta")
	threshold := fs.Float64("threshold", bp.DefaultThreshold, "convergence threshold")
	maxIter := fs.Int("maxiter", bp.DefaultMaxIterations, "iteration cap")
	queue := fs.Bool("queue", true, "enable the unconverged-element work queues")
	damping := fs.Float64("damping", 0, "damping factor d in [0,1): belief ← (1−d)·update + d·old (0 keeps the vanilla fast path)")
	variantName := fs.String("variant", "vanilla", "update rule: vanilla, damped, circular, or auto (selector picks from the oscillation-risk features)")
	mrf := fs.Bool("mrf", false, "treat the network as an undirected MRF: store each link as two directed edges so evidence flows against edge direction too (recommended for BIF inputs)")
	explain := fs.Bool("explain", false, "print the graph's metadata, feature vector and the selection reasoning before running")
	modelPath := fs.String("model", "", "load a trained selection forest (from credobench -train) to refine the Node/Edge choice")
	savePath := fs.String("save", "", "write the posterior beliefs to this file in the mtxbp node format")
	top := fs.Int("top", 10, "print the n nodes whose beliefs moved the most")
	telemetryOn := fs.Bool("telemetry", false, "record per-iteration convergence telemetry and print a sparkline report after the run")
	traceOut := fs.String("trace-out", "", "stream telemetry events to this file as JSONL (one event per line)")
	httpAddr := fs.String("http", "", "serve live telemetry on this address while the run is in flight: /metrics, /debug/vars and /debug/pprof")
	var observations multiFlag
	fs.Var(&observations, "observe", "clamp a node, as node:state (repeatable; node is an id or a name)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Telemetry sinks are assembled before loading so the ingest pipeline
	// can stream its chunk events through the same probe as the run.
	var probes []telemetry.Probe
	var recorder *telemetry.Recorder
	if *telemetryOn {
		recorder = telemetry.NewRecorder(0)
		probes = append(probes, recorder)
	}
	var traceFile *os.File
	var traceWriter *telemetry.JSONLWriter
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		traceFile = f
		traceWriter = telemetry.NewJSONLWriter(traceFile)
		probes = append(probes, traceWriter)
		// The success path flushes and closes explicitly (and reports the
		// errors); this defer only covers early error returns between here
		// and there, which nil traceFile out after closing.
		defer func() {
			if traceFile != nil {
				traceFile.Close()
			}
		}()
	}
	if *httpAddr != "" {
		metrics := &telemetry.Metrics{}
		probes = append(probes, metrics)
		server, err := telemetry.NewServer(*httpAddr, metrics, nil)
		if err != nil {
			return err
		}
		server.Start()
		defer server.Close()
		fmt.Fprintf(out, "telemetry: live metrics on http://%s/metrics (profiling on /debug/pprof)\n", server.Addr)
	}
	probe := telemetry.Multi(probes...)

	g, err := load(*nodesPath, *edgesPath, *bifPath, *xmlPath,
		mtxbp.ReadOptions{Workers: *ingestWorkers, Probe: probe})
	if err != nil {
		return err
	}
	if *mrf {
		g, err = g.Undirected()
		if err != nil {
			return err
		}
	}
	md := g.Stats()
	fmt.Fprintf(out, "loaded graph: %d nodes, %d directed edges, %d beliefs\n", md.NumNodes, md.NumEdges, md.States)

	prior := append([]float32(nil), g.Beliefs...)
	for _, obs := range observations {
		v, s, err := parseObservation(g, obs)
		if err != nil {
			return err
		}
		if err := g.Observe(v, s); err != nil {
			return err
		}
		fmt.Fprintf(out, "observed %s = state %d\n", nodeName(g, v), s)
	}

	gpu := gpusim.Pascal()
	switch strings.ToLower(*gpuName) {
	case "pascal":
	case "volta":
		gpu = gpusim.Volta()
	default:
		return fmt.Errorf("unknown GPU profile %q", *gpuName)
	}

	var classifier ml.Classifier
	if *modelPath != "" {
		mf, err := os.Open(*modelPath)
		if err != nil {
			return err
		}
		forest, err := ml.LoadForest(mf)
		mf.Close()
		if err != nil {
			return err
		}
		classifier = forest
	}

	autoVariant := false
	var variant kernel.Variant
	if strings.ToLower(*variantName) == "auto" {
		autoVariant = true
	} else {
		variant, err = kernel.ParseVariant(strings.ToLower(*variantName))
		if err != nil {
			return err
		}
	}
	if *damping < 0 || *damping >= 1 {
		return fmt.Errorf("-damping %g outside [0,1)", *damping)
	}

	eng := core.Engine{
		Selector: core.Selector{GPU: gpu, Classifier: classifier, PoolWorkers: *workers},
		Options: bp.Options{
			Threshold:     float32(*threshold),
			MaxIterations: *maxIter,
			WorkQueue:     *queue,
			Probe:         probe,
			Damping:       float32(*damping),
			Variant:       variant,
		},
		AutoVariant: autoVariant,
	}
	eng.Options = eng.Options.ResolveVariant()

	switch strings.ToLower(*engineName) {
	case "auto":
	case "pool":
		// The pool engine is requested explicitly: route the run to it
		// (an explicit -impl choice still wins).
		if eng.PoolWorkers == 0 {
			eng.PoolWorkers = runtime.NumCPU()
		}
		if *implName == "auto" {
			*implName = "pool"
		}
	case "relax":
		// The relaxed residual engine is requested explicitly: route the
		// run to it (an explicit -impl choice still wins).
		if eng.RelaxWorkers == 0 {
			eng.RelaxWorkers = *workers
		}
		if eng.RelaxWorkers == 0 {
			eng.RelaxWorkers = runtime.NumCPU()
		}
		if *implName == "auto" {
			*implName = "relax"
		}
	default:
		return fmt.Errorf("unknown engine %q (want auto, pool or relax)", *engineName)
	}

	if *explain {
		printExplanation(out, g, eng.Selector)
	}

	var rep core.Report
	if *implName == "auto" {
		rep, err = eng.Run(g)
	} else {
		impl, perr := parseImpl(*implName)
		if perr != nil {
			return perr
		}
		rep, err = eng.RunWith(g, impl)
	}
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "implementation: %s\n", rep.Implementation)
	fmt.Fprintf(out, "variant: %s\n", rep.Variant)
	fmt.Fprintf(out, "iterations: %d, converged: %v, final delta: %g\n",
		rep.Result.Iterations, rep.Result.Converged, rep.Result.FinalDelta)
	fmt.Fprintf(out, "modelled execution time: %v\n", rep.EstimatedTime)
	if rep.DeviceStats != nil {
		fmt.Fprintf(out, "device: %d kernels, %d B to device, %d atomics\n",
			rep.DeviceStats.KernelsLaunched, rep.DeviceStats.BytesToDevice, rep.DeviceStats.Atomics)
	}

	if traceWriter != nil {
		if err := traceWriter.Flush(); err != nil {
			return err
		}
		closeErr := traceFile.Close()
		traceFile = nil
		if closeErr != nil {
			return closeErr
		}
		fmt.Fprintf(out, "telemetry: event stream written to %s\n", *traceOut)
	}
	if recorder != nil {
		telemetry.WriteConvergenceReport(out, recorder.Events())
	}

	printTopMoved(out, g, prior, *top)

	if *savePath != "" {
		sf, err := os.Create(*savePath)
		if err != nil {
			return err
		}
		if err := mtxbp.WriteNodeBeliefs(sf, g); err != nil {
			sf.Close()
			return err
		}
		if err := sf.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "posteriors written to %s\n", *savePath)
	}
	return nil
}

func load(nodesPath, edgesPath, bifPath, xmlPath string, opts mtxbp.ReadOptions) (*graph.Graph, error) {
	switch {
	case bifPath != "":
		return bif.ParseFile(bifPath)
	case xmlPath != "":
		return xmlbif.ParseFile(xmlPath)
	case nodesPath != "" && edgesPath != "":
		return mtxbp.ReadParallel(nodesPath, edgesPath, opts)
	default:
		return nil, fmt.Errorf("need -nodes and -edges, or -bif, or -xmlbif")
	}
}

func parseImpl(name string) (core.Implementation, error) {
	switch strings.ToLower(name) {
	case "cedge":
		return core.CEdge, nil
	case "cnode":
		return core.CNode, nil
	case "cudaedge":
		return core.CUDAEdge, nil
	case "cudanode":
		return core.CUDANode, nil
	case "pool":
		return core.Pool, nil
	case "relax":
		return core.Relax, nil
	}
	return 0, fmt.Errorf("unknown implementation %q", name)
}

func parseObservation(g *graph.Graph, s string) (int32, int, error) {
	name, stateStr, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, fmt.Errorf("observation %q is not node:state", s)
	}
	state, err := strconv.Atoi(stateStr)
	if err != nil {
		return 0, 0, fmt.Errorf("observation %q: bad state: %w", s, err)
	}
	if id, err := strconv.Atoi(name); err == nil {
		return int32(id), state, nil
	}
	for i, n := range g.Names {
		if n == name {
			return int32(i), state, nil
		}
	}
	return 0, 0, fmt.Errorf("observation %q: no node named %q", s, name)
}

func nodeName(g *graph.Graph, v int32) string {
	if int(v) < len(g.Names) && g.Names[v] != "" {
		return g.Names[v]
	}
	return "node " + strconv.Itoa(int(v))
}

// printExplanation prints the metadata, the §3.7 feature vector and what
// the selector would choose.
func printExplanation(out io.Writer, g *graph.Graph, sel core.Selector) {
	md := g.Stats()
	fmt.Fprintf(out, "metadata: max in-degree %d, max out-degree %d, avg degree %.2f\n",
		md.MaxInDegree, md.MaxOutDegree, md.AvgInDegree)
	names := features.Names()
	for i, v := range features.Vector(md) {
		fmt.Fprintf(out, "feature %-18s = %.4g\n", names[i], v)
	}
	fp := g.MemoryFootprint()
	fmt.Fprintf(out, "device footprint: %d bytes (VRAM %d)\n", fp, sel.GPU.VRAMBytes)
	fmt.Fprintf(out, "selector would choose: %s\n", sel.Choose(md, fp))
}

// printTopMoved lists the nodes whose posterior shifted most from their
// prior.
func printTopMoved(out io.Writer, g *graph.Graph, prior []float32, top int) {
	type moved struct {
		v     int32
		delta float32
	}
	ms := make([]moved, g.NumNodes)
	for v := 0; v < g.NumNodes; v++ {
		ms[v] = moved{int32(v), graph.L1Diff(g.Belief(int32(v)), prior[v*g.States:(v+1)*g.States])}
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i].delta > ms[j].delta })
	if top > len(ms) {
		top = len(ms)
	}
	fmt.Fprintf(out, "top %d nodes by posterior shift:\n", top)
	for _, m := range ms[:top] {
		fmt.Fprintf(out, "  %-20s Δ=%.4f  belief=%v\n", nodeName(g, m.v), m.delta, formatBelief(g.Belief(m.v)))
	}
}

func formatBelief(b []float32) string {
	parts := make([]string, len(b))
	for i, v := range b {
		parts[i] = strconv.FormatFloat(float64(v), 'f', 4, 32)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// multiFlag collects repeated string flags.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }
