package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"credo/internal/gen"
	"credo/internal/ml"
	"credo/internal/mtxbp"
)

func writeTestGraph(t *testing.T) (nodes, edges string) {
	t.Helper()
	g, err := gen.Synthetic(50, 200, gen.Config{Seed: 1, States: 2, Shared: true})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	nodes = filepath.Join(dir, "g.nodes.mtx")
	edges = filepath.Join(dir, "g.edges.mtx")
	if err := mtxbp.WriteFiles(nodes, edges, g); err != nil {
		t.Fatal(err)
	}
	return nodes, edges
}

func TestRunMTXAuto(t *testing.T) {
	nodes, edges := writeTestGraph(t)
	var out bytes.Buffer
	if err := run([]string{"-nodes", nodes, "-edges", edges, "-observe", "3:1", "-top", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"loaded graph: 50 nodes", "observed node 3 = state 1", "implementation: C Edge", "top 3 nodes"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunForcedImplementations(t *testing.T) {
	nodes, edges := writeTestGraph(t)
	for _, impl := range []string{"cedge", "cnode", "cudaedge", "cudanode"} {
		var out bytes.Buffer
		if err := run([]string{"-nodes", nodes, "-edges", edges, "-impl", impl}, &out); err != nil {
			t.Fatalf("%s: %v", impl, err)
		}
		if strings.Contains(impl, "cuda") && !strings.Contains(out.String(), "device:") {
			t.Errorf("%s: no device stats printed", impl)
		}
	}
}

// writeHardGraph writes a strongly-coupled hub graph — pinned diverging
// under vanilla BP — in the mtxbp format.
func writeHardGraph(t *testing.T) (nodes, edges string) {
	t.Helper()
	g, err := gen.HubSkew(6, 300, gen.Config{Seed: 13, States: 2, Keep: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	nodes = filepath.Join(dir, "hub.nodes.mtx")
	edges = filepath.Join(dir, "hub.edges.mtx")
	if err := mtxbp.WriteFiles(nodes, edges, g); err != nil {
		t.Fatal(err)
	}
	return nodes, edges
}

// TestVariantFlags exercises -variant and -damping end to end: the
// report echoes the update rule, an explicit damping factor implies the
// damped variant, and -variant auto rescues a hard graph vanilla cannot
// solve (degrading circular to damped on the edge-paradigm default).
func TestVariantFlags(t *testing.T) {
	nodes, edges := writeTestGraph(t)
	var out bytes.Buffer
	if err := run([]string{"-nodes", nodes, "-edges", edges}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "variant: vanilla") {
		t.Errorf("default run does not report the vanilla variant:\n%s", out.String())
	}

	out.Reset()
	if err := run([]string{"-nodes", nodes, "-edges", edges, "-damping", "0.4"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "variant: damped") {
		t.Errorf("-damping 0.4 does not imply the damped variant:\n%s", out.String())
	}

	out.Reset()
	if err := run([]string{"-nodes", nodes, "-edges", edges, "-variant", "circular", "-impl", "cnode"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "variant: circular") {
		t.Errorf("-variant circular not echoed:\n%s", out.String())
	}

	hardNodes, hardEdges := writeHardGraph(t)
	out.Reset()
	if err := run([]string{"-nodes", hardNodes, "-edges", hardEdges, "-variant", "auto"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "variant: damped") {
		t.Errorf("-variant auto on a hard attractive graph: want damped (circular degraded off the node schedule):\n%s", s)
	}
	if !strings.Contains(s, "converged: true") {
		t.Errorf("-variant auto did not converge on the hard graph:\n%s", s)
	}

	out.Reset()
	if err := run([]string{"-nodes", hardNodes, "-edges", hardEdges}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "converged: false") {
		t.Errorf("hard graph went stale: vanilla run converged:\n%s", out.String())
	}
}

// TestVariantFlagErrors pins the flag validation.
func TestVariantFlagErrors(t *testing.T) {
	nodes, edges := writeTestGraph(t)
	for _, args := range [][]string{
		{"-nodes", nodes, "-edges", edges, "-variant", "bogus"},
		{"-nodes", nodes, "-edges", edges, "-damping", "1.5"},
		{"-nodes", nodes, "-edges", edges, "-damping", "-0.1"},
	} {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("args %v: expected an error", args)
		}
	}
}

func TestRunBIFByName(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "net.bif")
	src := `network t { }
variable rain { type discrete [ 2 ] { yes, no }; }
variable wet { type discrete [ 2 ] { yes, no }; }
probability ( rain ) { table 0.2, 0.8; }
probability ( wet | rain ) { ( yes ) 0.9, 0.1; ( no ) 0.05, 0.95; }
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-bif", path, "-observe", "wet:0"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "observed wet = state 0") {
		t.Errorf("named observation missing:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	nodes, edges := writeTestGraph(t)
	cases := [][]string{
		{},                       // no input
		{"-nodes", nodes},        // missing edge file
		{"-bif", "/nonexistent"}, // missing file
		{"-xmlbif", "/nonexistent"},
		{"-nodes", nodes, "-edges", edges, "-impl", "fpga"},
		{"-nodes", nodes, "-edges", edges, "-gpu", "tpu"},
		{"-nodes", nodes, "-edges", edges, "-observe", "notanode:0"},
		{"-nodes", nodes, "-edges", edges, "-observe", "3"},
		{"-nodes", nodes, "-edges", edges, "-observe", "3:zz"},
		{"-nodes", nodes, "-edges", edges, "-observe", "3:9"},
	}
	for _, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v: want error", args)
		}
	}
}

func TestRunVoltaProfile(t *testing.T) {
	nodes, edges := writeTestGraph(t)
	var out bytes.Buffer
	if err := run([]string{"-nodes", nodes, "-edges", edges, "-gpu", "volta", "-impl", "cudanode"}, &out); err != nil {
		t.Fatal(err)
	}
}

func TestExplainFlag(t *testing.T) {
	nodes, edges := writeTestGraph(t)
	var out bytes.Buffer
	if err := run([]string{"-nodes", nodes, "-edges", edges, "-explain"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"feature num_nodes", "selector would choose", "device footprint"} {
		if !strings.Contains(s, want) {
			t.Errorf("explain output missing %q:\n%s", want, s)
		}
	}
}

func TestMRFFlagDoublesEdges(t *testing.T) {
	nodes, edges := writeTestGraph(t)
	var out bytes.Buffer
	if err := run([]string{"-nodes", nodes, "-edges", edges, "-mrf"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "400 directed edges") {
		t.Errorf("mrf flag did not double edges:\n%s", out.String())
	}
}

func TestModelFlag(t *testing.T) {
	// Train a tiny forest directly and point credo at it.
	X := [][]float64{{1, 1, 2, 1, 0.5}, {2, 0.5, 2, 1, 0.4}, {6, 0.25, 2, 5, 0.01}, {7, 0.25, 2, 9, 0.005}}
	y := []int{1, 1, 0, 0}
	forest := &ml.RandomForest{Trees: 5, MaxDepth: 3, Seed: 1}
	if err := forest.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ml.SaveForest(f, forest); err != nil {
		t.Fatal(err)
	}
	f.Close()

	nodes, edges := writeTestGraph(t)
	var out bytes.Buffer
	if err := run([]string{"-nodes", nodes, "-edges", edges, "-model", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "implementation:") {
		t.Errorf("run output: %s", out.String())
	}
	// Missing / corrupt models error out.
	if err := run([]string{"-nodes", nodes, "-edges", edges, "-model", "/nonexistent"}, &out); err == nil {
		t.Error("missing model accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	_ = os.WriteFile(bad, []byte("{}"), 0o644)
	if err := run([]string{"-nodes", nodes, "-edges", edges, "-model", bad}, &out); err == nil {
		t.Error("corrupt model accepted")
	}
}

func TestSaveFlag(t *testing.T) {
	nodes, edges := writeTestGraph(t)
	outPath := filepath.Join(t.TempDir(), "posteriors.mtx")
	var out bytes.Buffer
	if err := run([]string{"-nodes", nodes, "-edges", edges, "-observe", "0:1", "-save", outPath}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "%%MatrixMarket credo node beliefs") {
		t.Errorf("saved file header wrong:\n%.80s", data)
	}
	if !strings.Contains(out.String(), "posteriors written") {
		t.Errorf("missing save confirmation:\n%s", out.String())
	}
}

func TestEngineFlag(t *testing.T) {
	nodes, edges := writeTestGraph(t)
	var out bytes.Buffer
	if err := run([]string{"-nodes", nodes, "-edges", edges, "-engine", "pool", "-workers", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "implementation: Go Pool") {
		t.Errorf("-engine=pool did not route to the pool engine:\n%s", out.String())
	}
	if err := run([]string{"-nodes", nodes, "-edges", edges, "-engine", "hyperdrive"}, &out); err == nil {
		t.Error("unknown engine accepted")
	}
}

func TestTelemetryFlags(t *testing.T) {
	nodes, edges := writeTestGraph(t)
	trace := filepath.Join(t.TempDir(), "events.jsonl")
	var out bytes.Buffer
	if err := run([]string{"-nodes", nodes, "-edges", edges,
		"-telemetry", "-trace-out", trace, "-http", "127.0.0.1:0"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"telemetry: live metrics on http://",
		"telemetry: event stream written to",
		"convergence trajectories",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}

	// Every line of the trace must be valid JSON framing one run.
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) < 3 {
		t.Fatalf("trace has %d lines, want at least run_start + iteration + run_end", len(lines))
	}
	kinds := make([]string, len(lines))
	for i, line := range lines {
		var m struct {
			Kind   string `json:"kind"`
			Engine string `json:"engine"`
		}
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("trace line %d is not JSON: %v\n%s", i+1, err, line)
		}
		kinds[i] = m.Kind
	}
	// An mtxbp input streams through the parallel ingest path, so the
	// trace opens with its ingest events; the run framing follows them.
	ingest := 0
	for ingest < len(kinds) && kinds[ingest] == "ingest" {
		ingest++
	}
	if ingest == 0 {
		t.Error("trace has no leading ingest events for an mtxbp input")
	}
	run := kinds[ingest:]
	if len(run) < 3 || run[0] != "run_start" || run[len(run)-1] != "run_end" {
		t.Errorf("trace framing wrong after %d ingest events: %v", ingest, run)
	}
}

func TestTelemetryFlagErrors(t *testing.T) {
	nodes, edges := writeTestGraph(t)
	// Unwritable trace path and unbindable address both surface as errors.
	if err := run([]string{"-nodes", nodes, "-edges", edges, "-trace-out", "/nonexistent/d/t.jsonl"}, &bytes.Buffer{}); err == nil {
		t.Error("unwritable -trace-out accepted")
	}
	if err := run([]string{"-nodes", nodes, "-edges", edges, "-http", "256.0.0.1:bad"}, &bytes.Buffer{}); err == nil {
		t.Error("unbindable -http address accepted")
	}
}
