// Command credobench regenerates the paper's tables and figures (the
// experiment index of DESIGN.md §5) on the scaled benchmark tiers.
//
//	credobench -exp fig7 -tier small
//	credobench -exp all -tier ci -o results.txt
//
// Every experiment prints the rows or series of its paper artifact next to
// the paper's reported values so the shapes can be compared directly.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"credo/internal/bench"
	"credo/internal/kernel"
	"credo/internal/ml"
	"credo/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "credobench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("credobench", flag.ContinueOnError)
	expID := fs.String("exp", "all", "experiment id or 'all' (ids: "+idList()+")")
	tierName := fs.String("tier", "small", "benchmark tier: ci, small or medium")
	engineName := fs.String("engine", "auto", "execution engine: auto runs -exp as given; pool focuses on the worker-pool comparison (-exp pool); relax on the relaxed-scheduling comparison (-exp relax)")
	workers := fs.Int("workers", 8, "worker team size for the pool and relax experiments")
	ingestWorkers := fs.Int("ingest-workers", 8, "parallel chunked ingest fan-out for the ingest experiment")
	seed := fs.Int64("seed", 1, "generator seed")
	damping := fs.Float64("damping", 0, "damping factor d in [0,1) applied to every engine run (0 keeps the vanilla fast path)")
	variantName := fs.String("variant", "vanilla", "update rule for every engine run: vanilla, damped or circular")
	outPath := fs.String("o", "", "also write the report to this file")
	trainPath := fs.String("train", "", "instead of running experiments, train the selection forest on the tier's dataset and save it here (JSON, loadable by credo -model)")
	telemetryOn := fs.Bool("telemetry", false, "record telemetry from every engine run and print a convergence report after the experiments")
	traceOut := fs.String("trace-out", "", "stream telemetry events from every engine run to this file as JSONL")
	httpAddr := fs.String("http", "", "serve live telemetry on this address while the experiments run: /metrics, /debug/vars and /debug/pprof")
	if err := fs.Parse(args); err != nil {
		return err
	}

	tier, err := bench.TierByName(*tierName)
	if err != nil {
		return err
	}
	cfg := bench.DefaultConfig(tier)
	cfg.Seed = *seed
	cfg.PoolWorkers = *workers
	cfg.IngestWorkers = *ingestWorkers
	if *damping < 0 || *damping >= 1 {
		return fmt.Errorf("-damping %g outside [0,1)", *damping)
	}
	cfg.Options.Damping = float32(*damping)
	cfg.Options.Variant, err = kernel.ParseVariant(strings.ToLower(*variantName))
	if err != nil {
		return err
	}
	cfg.Options = cfg.Options.ResolveVariant()

	var probes []telemetry.Probe
	var recorder *telemetry.Recorder
	if *telemetryOn {
		recorder = telemetry.NewRecorder(0)
		probes = append(probes, recorder)
	}
	var traceFile *os.File
	var traceWriter *telemetry.JSONLWriter
	if *traceOut != "" {
		traceFile, err = os.Create(*traceOut)
		if err != nil {
			return err
		}
		traceWriter = telemetry.NewJSONLWriter(traceFile)
		probes = append(probes, traceWriter)
		// The success path flushes and closes explicitly (and reports the
		// errors); this defer only covers early error returns between here
		// and there, which nil traceFile out after closing.
		defer func() {
			if traceFile != nil {
				traceFile.Close()
			}
		}()
	}
	if *httpAddr != "" {
		metrics := &telemetry.Metrics{}
		probes = append(probes, metrics)
		server, err := telemetry.NewServer(*httpAddr, metrics, nil)
		if err != nil {
			return err
		}
		server.Start()
		defer server.Close()
		fmt.Fprintf(stdout, "telemetry: live metrics on http://%s/metrics (profiling on /debug/pprof)\n", server.Addr)
	}
	cfg.Options.Probe = telemetry.Multi(probes...)

	switch strings.ToLower(*engineName) {
	case "auto":
	case "pool":
		if *expID == "all" {
			*expID = "pool"
		}
	case "relax":
		if *expID == "all" {
			*expID = "relax"
		}
	default:
		return fmt.Errorf("unknown engine %q (want auto, pool or relax)", *engineName)
	}

	if *trainPath != "" {
		return trainModel(*trainPath, cfg, stdout)
	}

	out := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = io.MultiWriter(stdout, f)
	}

	var exps []bench.Experiment
	if *expID == "all" {
		exps = bench.Experiments()
	} else {
		for _, id := range strings.Split(*expID, ",") {
			e, ok := bench.ByID(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q (ids: %s)", id, idList())
			}
			exps = append(exps, e)
		}
	}

	for i, e := range exps {
		if i > 0 {
			fmt.Fprintln(out)
		}
		fmt.Fprintf(out, "==== %s: %s ====\n", e.ID, e.Title)
		start := time.Now()
		if err := e.Run(out, cfg); err != nil {
			return fmt.Errorf("experiment %s: %w", e.ID, err)
		}
		fmt.Fprintf(out, "[%s completed in %v]\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if traceWriter != nil {
		if err := traceWriter.Flush(); err != nil {
			return err
		}
		closeErr := traceFile.Close()
		traceFile = nil
		if closeErr != nil {
			return closeErr
		}
		fmt.Fprintf(out, "telemetry: event stream written to %s\n", *traceOut)
	}
	if recorder != nil {
		fmt.Fprintln(out)
		telemetry.WriteConvergenceReport(out, recorder.Events())
	}
	return nil
}

// trainModel builds the classifier dataset, trains the paper's tuned
// random forest and saves it.
func trainModel(path string, cfg bench.Config, out io.Writer) error {
	ds, err := bench.BuildDataset(bench.Table1(), bench.UseCases(), cfg)
	if err != nil {
		return err
	}
	forest := &ml.RandomForest{Trees: 14, MaxDepth: 6, Seed: cfg.Seed}
	if err := forest.Fit(ds.X, ds.Y); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ml.SaveForest(f, forest); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "trained on %d labeled variants (tier %s); model saved to %s\n", len(ds.X), cfg.Tier.Name, path)
	return nil
}

func idList() string {
	var ids []string
	for _, e := range bench.Experiments() {
		ids = append(ids, e.ID)
	}
	return strings.Join(ids, ", ")
}
