package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "table1", "-tier", "ci"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "soc-twitter-2010") {
		t.Errorf("table1 output incomplete:\n%s", out.String())
	}
}

func TestRunMultipleExperimentsToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.txt")
	var out bytes.Buffer
	if err := run([]string{"-exp", "table1,aossoa", "-tier", "ci", "-o", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "AoS") {
		t.Errorf("file report incomplete:\n%s", data)
	}
	if out.String() != string(data) {
		t.Error("stdout and file reports differ")
	}
}

func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-exp", "fig99"},
		{"-tier", "galactic"},
	} {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v: want error", args)
		}
	}
}

func TestTrainAndUseModel(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.json")
	var out bytes.Buffer
	if err := run([]string{"-train", path, "-tier", "ci"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "model saved to") {
		t.Errorf("training output: %s", out.String())
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}
