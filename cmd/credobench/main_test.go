package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "table1", "-tier", "ci"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "soc-twitter-2010") {
		t.Errorf("table1 output incomplete:\n%s", out.String())
	}
}

func TestRunMultipleExperimentsToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.txt")
	var out bytes.Buffer
	if err := run([]string{"-exp", "table1,aossoa", "-tier", "ci", "-o", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "AoS") {
		t.Errorf("file report incomplete:\n%s", data)
	}
	if out.String() != string(data) {
		t.Error("stdout and file reports differ")
	}
}

func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-exp", "fig99"},
		{"-tier", "galactic"},
	} {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v: want error", args)
		}
	}
}

func TestTrainAndUseModel(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.json")
	var out bytes.Buffer
	if err := run([]string{"-train", path, "-tier", "ci"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "model saved to") {
		t.Errorf("training output: %s", out.String())
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}

// TestTelemetryExperimentSeedReproducible locks the -seed plumbing end
// to end: the telemetry experiment's full report — update counts,
// iteration trajectories, event totals — must be identical across runs
// with the same seed.
func TestTelemetryExperimentSeedReproducible(t *testing.T) {
	report := func(seed string) string {
		var out bytes.Buffer
		if err := run([]string{"-exp", "telemetry", "-tier", "ci", "-seed", seed, "-workers", "1"}, &out); err != nil {
			t.Fatal(err)
		}
		// The timing footer varies run to run; everything above it must not.
		s := out.String()
		if i := strings.Index(s, "[telemetry completed"); i >= 0 {
			s = s[:i]
		}
		return s
	}
	a, b := report("42"), report("42")
	if a != b {
		t.Errorf("same seed, different reports:\n--- first\n%s\n--- second\n%s", a, b)
	}
	if !strings.Contains(a, "seed 42") {
		t.Errorf("report does not echo the seed:\n%s", a)
	}
}

// TestRobustExperimentReproducible locks the deterministic body of the
// robust report — the converged-fraction table and the per-case selector
// table — across runs (the adversarial corpus carries its own seeds), and
// pins the acceptance shape: vanilla converges nowhere on the corpus,
// damping rescues every case, and the oscillation-risk selector never
// picks a variant that is pinned diverging.
func TestRobustExperimentReproducible(t *testing.T) {
	report := func() string {
		var out bytes.Buffer
		if err := run([]string{"-exp", "robust", "-tier", "ci", "-workers", "4"}, &out); err != nil {
			t.Fatal(err)
		}
		// The wall-clock footer varies run to run; everything above it
		// must not.
		s := out.String()
		if i := strings.Index(s, "wall-clock"); i >= 0 {
			s = s[:i]
		}
		return s
	}
	a, b := report(), report()
	if a != b {
		t.Errorf("same corpus, different reports:\n--- first\n%s\n--- second\n%s", a, b)
	}
	for _, want := range []string{"0/7", "7/7"} {
		if !strings.Contains(a, want) {
			t.Errorf("report lacks the pinned convergence shape %q:\n%s", want, a)
		}
	}
	if strings.Contains(a, "selector miss") {
		t.Errorf("selector picked a pinned-diverging variant:\n%s", a)
	}
}

// TestBenchTelemetryFlags exercises credobench's own sinks: -trace-out
// must capture every engine run of the experiment as JSONL and
// -telemetry must append the convergence report.
func TestBenchTelemetryFlags(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "bench.jsonl")
	var out bytes.Buffer
	if err := run([]string{"-exp", "telemetry", "-tier", "ci", "-telemetry", "-trace-out", trace}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "convergence trajectories") {
		t.Errorf("missing convergence report:\n%s", out.String())
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	engines := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
		var m struct {
			Kind   string `json:"kind"`
			Engine string `json:"engine"`
		}
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("trace line is not JSON: %v\n%s", err, line)
		}
		if m.Kind == "run_end" {
			engines[m.Engine] = true
		}
	}
	for _, want := range []string{"bp.node", "bp.edge", "bp.residual", "pool.node", "relax", "omp.node", "cuda.edge"} {
		if !engines[want] {
			t.Errorf("trace has no run_end for %s (saw %v)", want, engines)
		}
	}
}
