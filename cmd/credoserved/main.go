// Command credoserved is the long-lived inference daemon: it loads belief
// networks into a resident registry at startup and serves concurrent
// posterior queries over HTTP, warm-starting each query from the last
// converged fixpoint when the evidence delta allows (internal/serve).
//
//	credoserved -listen :8080 -ops :9090 -load sprinkler=bif:sprinkler.bif
//	curl -s localhost:8080/v1/query -d '{"evidence":[{"node":"wetgrass","state":1}]}'
//
// The query plane exposes /healthz, /v1/graphs, /v1/load and /v1/query;
// the ops plane (-ops) is a separate telemetry sidecar with Prometheus
// /metrics, /debug/vars and /debug/pprof, so scraping and profiling never
// compete with queries for the admission gate.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"credo/internal/bp"
	"credo/internal/core"
	"credo/internal/gpusim"
	"credo/internal/ml"
	"credo/internal/serve"
	"credo/internal/telemetry"
)

func main() {
	app, err := build(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "credoserved:", err)
		os.Exit(1)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := app.run(ctx, nil); err != nil {
		fmt.Fprintln(os.Stderr, "credoserved:", err)
		os.Exit(1)
	}
}

// app is a fully configured daemon: the serving instance plus the
// listener addresses and telemetry lifecycle it owns.
type app struct {
	srv    *serve.Server
	out    io.Writer
	listen string
	ops    string

	traceFile   *os.File
	traceWriter *telemetry.JSONLWriter
	metrics     *telemetry.Metrics
	tracer      *telemetry.Tracer
	flight      *telemetry.FlightRecorder
}

// build parses flags, assembles telemetry, and loads every -load graph
// into a serving registry. It does not open any listener.
func build(args []string, out io.Writer) (*app, error) {
	fs := flag.NewFlagSet("credoserved", flag.ContinueOnError)
	fs.SetOutput(out)
	listen := fs.String("listen", ":8080", "query-plane listen address")
	ops := fs.String("ops", "", "ops-plane listen address (Prometheus /metrics, /debug/vars, /debug/pprof); empty disables")
	var loads multiFlag
	fs.Var(&loads, "load", "graph to load at startup, as name=bif:PATH, name=xmlbif:PATH or name=mtx:NODES,EDGES (repeatable)")
	workers := fs.Int("workers", 0, "worker team size for the relax and pool engines (0 = NumCPU)")
	ingestWorkers := fs.Int("ingest-workers", 0, "parallel chunked ingest fan-out for mtxbp loads (0 = NumCPU, 1 = sequential)")
	maxInFlight := fs.Int("max-inflight", serve.DefaultMaxInFlight, "queries executing concurrently")
	maxQueue := fs.Int("max-queue", 0, "admitted-but-waiting queries beyond -max-inflight before shedding with 429 (0 = 4x max-inflight)")
	retryAfter := fs.Duration("retry-after", time.Second, "Retry-After hint on shed responses")
	batchK := fs.Int("batch-k", serve.DefaultBatchK, "cross-query batch width: auto-engine queries per graph accumulate and run as one K-lane SoA batch (1 disables batching)")
	batchWindow := fs.Duration("batch-window", serve.DefaultBatchWindow, "batch accumulation deadline: a partial batch flushes this long after its first query")
	threshold := fs.Float64("threshold", bp.DefaultThreshold, "convergence threshold")
	maxIter := fs.Int("maxiter", bp.DefaultMaxIterations, "iteration cap per query")
	mrf := fs.Bool("mrf", true, "double directed BIF/XMLBIF networks into MRF form on load, so evidence flows against edge direction")
	cuda := fs.Bool("cuda", false, "let automatic selection route queries to the simulated CUDA device (off for serving: the simulator models batch offload, not query latency)")
	modelPath := fs.String("model", "", "load a trained selection forest (from credobench -train) to refine the Node/Edge choice")
	traceOut := fs.String("trace-out", "", "stream telemetry events (queries, sheds, loads, engine runs) to this file as JSONL")
	traceSample := fs.Float64("trace-sample", 1, "fraction of queries carrying a request-scoped span trace (1 = all, 0 disables tracing)")
	flightSlowMs := fs.Int("flight-slow-ms", 250, "latency threshold flagging a traced query slow and capturing it in the flight recorder (0 captures every traced query, negative disables the latency trigger)")
	flightDepth := fs.Int("flight-depth", telemetry.DefaultFlightDepth, "anomalous traces retained by the flight recorder ring (served at /debug/flight on the ops plane)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}

	a := &app{out: out, listen: *listen, ops: *ops}

	var probes []telemetry.Probe
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return nil, err
		}
		a.traceFile = f
		a.traceWriter = telemetry.NewJSONLWriter(f)
		probes = append(probes, a.traceWriter)
	}
	if *ops != "" {
		a.metrics = &telemetry.Metrics{}
		probes = append(probes, a.metrics)
	}
	// Tracing rides on the telemetry sinks: without an ops plane or a
	// trace file there is nowhere for spans or flight records to go, so
	// the tracer stays nil and the span path costs nothing.
	if *traceSample > 0 && (*ops != "" || *traceOut != "") {
		a.tracer = telemetry.NewTracer(*traceSample)
		a.tracer.Metrics = a.metrics
		a.tracer.SlowNs = int64(*flightSlowMs) * 1e6
		if *flightSlowMs < 0 {
			a.tracer.SlowNs = -1
		}
		a.flight = telemetry.NewFlightRecorder(*flightDepth)
		a.flight.SetSink(a.traceWriter)
		a.tracer.Flight = a.flight
	}

	var classifier ml.Classifier
	if *modelPath != "" {
		mf, err := os.Open(*modelPath)
		if err != nil {
			a.closeTrace()
			return nil, err
		}
		forest, err := ml.LoadForest(mf)
		mf.Close()
		if err != nil {
			a.closeTrace()
			return nil, err
		}
		classifier = forest
	}

	a.srv = serve.New(serve.Config{
		Selector: core.Selector{
			GPU:         gpusim.Pascal(),
			Classifier:  classifier,
			DisableCUDA: !*cuda,
		},
		Options: bp.Options{
			Threshold:     float32(*threshold),
			MaxIterations: *maxIter,
			WorkQueue:     true,
			// Probe is installed by serve from Config.Probe.
		},
		Workers:       *workers,
		MaxInFlight:   *maxInFlight,
		MaxQueue:      *maxQueue,
		RetryAfter:    *retryAfter,
		BatchK:        *batchK,
		BatchWindow:   *batchWindow,
		Probe:         telemetry.Multi(probes...),
		Tracer:        a.tracer,
		MRF:           *mrf,
		IngestWorkers: *ingestWorkers,
	})

	for _, l := range loads {
		name, spec, err := parseLoad(l)
		if err != nil {
			a.closeTrace()
			return nil, err
		}
		r, err := a.srv.LoadFiles(name, spec)
		if err != nil {
			a.closeTrace()
			return nil, err
		}
		md := r.Metadata()
		fmt.Fprintf(out, "loaded %s: %d nodes, %d directed edges, %d beliefs\n",
			name, md.NumNodes, md.NumEdges, md.States)
	}
	return a, nil
}

// run opens the query (and optional ops) listeners and serves until ctx
// is cancelled, then shuts down gracefully. ready, when non-nil, receives
// the query plane's bound address once it is accepting connections.
func (a *app) run(ctx context.Context, ready func(addr string)) error {
	defer a.closeTrace()

	if a.ops != "" {
		opsSrv, err := telemetry.NewServer(a.ops, a.metrics, a.flight)
		if err != nil {
			return err
		}
		opsSrv.Start()
		defer opsSrv.Close()
		fmt.Fprintf(a.out, "ops plane on http://%s/metrics (profiling on /debug/pprof)\n", opsSrv.Addr)
	}

	ln, err := net.Listen("tcp", a.listen)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: a.srv.Handler()}
	fmt.Fprintf(a.out, "serving %s on http://%s/v1/query\n",
		strings.Join(a.srv.Names(), ", "), ln.Addr())
	if ready != nil {
		ready(ln.Addr().String())
	}

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// Flush pending batches before the shutdown deadline can bite:
	// Shutdown waits for in-flight handlers, and batched handlers block
	// on their window timer.
	a.srv.DrainBatchers()
	if err := hs.Shutdown(shutCtx); err != nil {
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(a.out, "shut down")
	return nil
}

func (a *app) closeTrace() {
	if a.traceWriter != nil {
		a.traceWriter.Flush()
	}
	if a.traceFile != nil {
		a.traceFile.Close()
		a.traceFile = nil
	}
}

// parseLoad turns a -load value — name=bif:PATH, name=xmlbif:PATH or
// name=mtx:NODES,EDGES — into a registry entry.
func parseLoad(s string) (string, serve.LoadSpec, error) {
	name, rest, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return "", serve.LoadSpec{}, fmt.Errorf("-load %q is not name=format:path", s)
	}
	format, path, ok := strings.Cut(rest, ":")
	if !ok || path == "" {
		return "", serve.LoadSpec{}, fmt.Errorf("-load %q is not name=format:path", s)
	}
	switch format {
	case "bif":
		return name, serve.LoadSpec{BIF: path}, nil
	case "xmlbif":
		return name, serve.LoadSpec{XMLBIF: path}, nil
	case "mtx":
		nodes, edges, ok := strings.Cut(path, ",")
		if !ok || nodes == "" || edges == "" {
			return "", serve.LoadSpec{}, fmt.Errorf("-load %q: mtx wants NODES,EDGES", s)
		}
		return name, serve.LoadSpec{Nodes: nodes, Edges: edges}, nil
	}
	return "", serve.LoadSpec{}, fmt.Errorf("-load %q: unknown format %q (want bif, xmlbif or mtx)", s, format)
}

// multiFlag collects repeated string flags.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }
