package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"
)

func sprinklerPath() string {
	_, file, _, _ := runtime.Caller(0)
	return filepath.Join(filepath.Dir(file), "..", "..", "internal", "bif", "testdata", "sprinkler.bif")
}

func TestParseLoad(t *testing.T) {
	for _, tc := range []struct {
		in, name string
		ok       bool
	}{
		{"g=bif:/p/net.bif", "g", true},
		{"g=xmlbif:/p/net.xml", "g", true},
		{"g=mtx:/p/a.mtx,/p/b.mtx", "g", true},
		{"no-equals", "", false},
		{"=bif:/p", "", false},
		{"g=bif:", "", false},
		{"g=mtx:/p/only-nodes", "", false},
		{"g=tar:/p", "", false},
	} {
		name, _, err := parseLoad(tc.in)
		if tc.ok && (err != nil || name != tc.name) {
			t.Errorf("parseLoad(%q) = %q, %v", tc.in, name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("parseLoad(%q) accepted", tc.in)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	var out bytes.Buffer
	if _, err := build([]string{"-load", "g=bif:/does/not/exist.bif"}, &out); err == nil {
		t.Error("build accepted a missing BIF file")
	}
	if _, err := build([]string{"-bogus"}, &out); err == nil {
		t.Error("build accepted an unknown flag")
	}
}

// TestServeEndToEnd boots the daemon on an ephemeral port with the
// sprinkler network and a JSONL trace, runs a cold and then a warm query
// through real HTTP, and shuts down on context cancel — the in-process
// twin of the CI server-smoke job.
func TestServeEndToEnd(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "serve.jsonl")
	var out bytes.Buffer
	app, err := build([]string{
		"-listen", "127.0.0.1:0",
		"-load", "sprinkler=bif:" + sprinklerPath(),
		"-trace-out", trace,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	addrc := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- app.run(ctx, func(addr string) { addrc <- addr }) }()
	var addr string
	select {
	case addr = <-addrc:
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v\n%s", err, out.String())
	}

	query := func(body string) map[string]any {
		t.Helper()
		resp, err := http.Post("http://"+addr+"/v1/query", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query = %d: %s", resp.StatusCode, data)
		}
		var m map[string]any
		if err := json.Unmarshal(data, &m); err != nil {
			t.Fatalf("bad JSON: %v\n%s", err, data)
		}
		return m
	}

	cold := query(`{"evidence":[{"node":"wetgrass","state":1}],"nodes":["rain"]}`)
	if cold["warm"] != false || cold["converged"] != true {
		t.Fatalf("cold query = %v", cold)
	}
	warm := query(`{"evidence":[{"node":"wetgrass","state":1},{"node":"cloudy","state":0}],"nodes":["rain"]}`)
	if warm["warm"] != true || warm["converged"] != true {
		t.Fatalf("warm query = %v", warm)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v\n%s", err, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}

	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"engine":"serve.load"`, `"engine":"serve.query"`, `"warm":true`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("trace misses %s:\n%s", want, data)
		}
	}
	if !strings.Contains(out.String(), "loaded sprinkler: 4 nodes") {
		t.Errorf("startup log misses the load line:\n%s", out.String())
	}
}
