#!/usr/bin/env bash
# Black-box smoke test of the credoserved daemon — the CI server-smoke
# job and `make server-smoke` both run exactly this script.
#
# It builds the binary, boots it on ephemeral ports with the sprinkler
# network and a JSONL trace, then drives the public surface with curl:
# liveness, the registry listing, a cold posterior query (validated for
# shape and normalization with jq), a warm-start second query, the error
# body contract, a graph-delta round-trip through POST /v1/update (the
# prior drift must advance the generation and re-converge the warm
# snapshot in place, so the query after it still warm-starts), and the
# Prometheus counters, latency histograms and flight recorder on the
# ops sidecar (-flight-slow-ms 0 forces every traced query into the
# recorder, so the dump is deterministic). Finally it shuts the daemon
# down gracefully and checks the telemetry trace is well-formed JSONL
# covering the load, the queries, the update and the flight records.
set -euo pipefail

cd "$(dirname "$0")/.."

BIN=${BIN:-./credoserved.smoke}
LOG=${LOG:-server-smoke.log}
TRACE=${TRACE:-server-smoke.jsonl}
FLIGHT=${FLIGHT:-server-smoke-flight.json}
rm -f "$LOG" "$TRACE" "$FLIGHT"

go build -o "$BIN" ./cmd/credoserved

"$BIN" -listen 127.0.0.1:0 -ops 127.0.0.1:0 \
  -load sprinkler=bif:internal/bif/testdata/sprinkler.bif \
  -flight-slow-ms 0 \
  -trace-out "$TRACE" >"$LOG" 2>&1 &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

# The daemon prints its bound addresses once each plane is listening.
ADDR= OPS=
for _ in $(seq 1 100); do
  ADDR=$(sed -n 's#^serving .* on http://\([0-9.:]*\)/v1/query$#\1#p' "$LOG")
  OPS=$(sed -n 's#^ops plane on http://\([0-9.:]*\)/metrics.*$#\1#p' "$LOG")
  [ -n "$ADDR" ] && [ -n "$OPS" ] && break
  sleep 0.1
done
if [ -z "$ADDR" ] || [ -z "$OPS" ]; then
  echo "daemon did not become ready; log:" >&2
  cat "$LOG" >&2
  exit 1
fi
echo "query plane on $ADDR, ops plane on $OPS"

curl -fsS "http://$ADDR/healthz" >/dev/null

curl -fsS "http://$ADDR/v1/graphs" \
  | jq -e '.[0].name == "sprinkler" and .[0].nodes == 4 and .[0].warm == false' >/dev/null

# Cold query: converged, not warm, posterior is a 2-state distribution.
curl -fsS -X POST "http://$ADDR/v1/query" \
  -H 'Content-Type: application/json' \
  -d '{"evidence":[{"node":"wetgrass","state":1}],"nodes":["rain"]}' \
  | jq -e '.converged == true and .warm == false
      and (.beliefs.rain | length) == 2
      and ((.beliefs.rain | add) > 0.999) and ((.beliefs.rain | add) < 1.001)' >/dev/null
echo "cold query OK"

# Second query with extra evidence: must take the warm-start path.
curl -fsS -X POST "http://$ADDR/v1/query?engine=residual" \
  -H 'Content-Type: application/json' \
  -d '{"evidence":[{"node":"wetgrass","state":1},{"node":"cloudy","state":0}],"nodes":["rain"]}' \
  | jq -e '.converged == true and .warm == true' >/dev/null
echo "warm query OK"

# Error contract: bad requests come back as {"error": ...}.
curl -s -X POST "http://$ADDR/v1/query?engine=bogus" -d '{}' \
  | jq -e '.error | length > 0' >/dev/null
curl -s -X POST "http://$ADDR/v1/query" \
  -d '{"evidence":[{"node":"nope","state":0}]}' \
  | jq -e '.error | length > 0' >/dev/null
echo "error contract OK"

# Dynamic-graph update round-trip: a prior drift lands through
# POST /v1/update, advances the graph generation, and re-converges the
# warm snapshot in place (non-structural, small frontier). The update
# is visible in the registry listing, and the query after it — same
# evidence as the warm query — still takes the warm path, now against
# the mutated world.
GEN0=$(curl -fsS "http://$ADDR/v1/graphs" | jq '.[0].generation')
curl -fsS -X POST "http://$ADDR/v1/update" \
  -H 'Content-Type: application/json' \
  -d '{"updates":[{"op":"prior","node":"sprinkler","prior":[0.8,0.2]}]}' \
  | jq -e '.applied == 1 and .structural == false
      and .converged == true and .warm == true
      and .generation > '"$GEN0" >/dev/null
curl -fsS "http://$ADDR/v1/graphs" \
  | jq -e '.[0].warm == true and .[0].generation > '"$GEN0" >/dev/null
curl -fsS -X POST "http://$ADDR/v1/query?engine=residual" \
  -H 'Content-Type: application/json' \
  -d '{"evidence":[{"node":"wetgrass","state":1},{"node":"cloudy","state":0}],"nodes":["rain"]}' \
  | jq -e '.converged == true and .warm == true' >/dev/null
# A malformed update is rejected at decode time: bare error body,
# nothing applied.
curl -s -X POST "http://$ADDR/v1/update" \
  -d '{"updates":[{"op":"evidence","node":"rain","state":9}]}' \
  | jq -e '.error | length > 0' >/dev/null
# An operation rejected at apply time mid-batch (retracting a clamp the
# update path never placed) leaves the applied prefix committed, and
# the error comes back alongside the structured response — applied and
# generation let the client resync without parsing the error string.
curl -s -X POST "http://$ADDR/v1/update" \
  -d '{"updates":[{"op":"prior","node":"rain","prior":[0.5,0.5]},{"op":"retract","node":"wetgrass"}]}' \
  | jq -e '(.error | length > 0) and .applied == 1 and .generation > '"$GEN0" >/dev/null
echo "update round-trip OK"

# Ops sidecar: the serve counters reflect the three successful queries
# (two of them warm) and the one applied delta batch. The cold
# auto-engine query ran through the cross-query batcher (on by
# default), so exactly one flush executed at occupancy 1; the explicit
# engine=residual queries took the solo path.
METRICS=$(curl -fsS "http://$OPS/metrics")
echo "$METRICS" | grep -q '^credo_serve_queries_total 3$'
echo "$METRICS" | grep -q '^credo_serve_warm_total 2$'
echo "$METRICS" | grep -q '^credo_serve_loads_total 1$'
echo "$METRICS" | grep -q '^credo_serve_updates_total 1$'
echo "$METRICS" | grep -q '^credo_serve_mutations_total 1$'
echo "$METRICS" | grep -q '^credo_serve_batch_flushes{reason="deadline"} 1$'
echo "$METRICS" | grep -q '^credo_serve_batch_occupancy 1$'
echo "ops sidecar OK"

# Latency histograms: all three queries land in the labelled log
# buckets (one batched cold, two solo warm — the per-family counts sum
# to 3), the quantile gauges render, and the span stages fed their
# histograms.
echo "$METRICS" | grep -q '^credo_serve_latency_seconds_bucket{'
[ "$(echo "$METRICS" | awk -F' ' '/^credo_serve_latency_seconds_count\{/ {sum += $2} END {print sum+0}')" = 3 ]
echo "$METRICS" | grep -q 'credo_serve_latency_quantile_seconds{.*q="0.99"}'
echo "$METRICS" | grep -q '^credo_serve_stage_seconds_bucket{stage="decode"'
echo "$METRICS" | grep -q '^credo_serve_batch_deadline_occupancy_bucket'
curl -fsS "http://$OPS/debug/vars" \
  | jq -e '.["credo.telemetry"]
      | .serve_latency_count == 3
        and .serve_updates == 1
        and .serve_latency_p50 > 0
        and .serve_latency_p95 >= .serve_latency_p50
        and .serve_latency_p99 >= .serve_latency_p95' >/dev/null
echo "latency histograms OK"

# Flight recorder: -flight-slow-ms 0 flags every traced request, so
# four traces were captured with their span trees — the cold query,
# both warm queries, and the bad-evidence request (its trace ends at
# the decode error; the engine=bogus request fails before a trace
# starts, and the update path is untraced). The dump is kept as a CI
# artifact.
curl -fsS "http://$OPS/debug/flight" >"$FLIGHT"
jq -e '.captured == 4
    and (.records | length) == 4
    and all(.records[]; .reasons | index("slow") != null)
    and all(.records[]; (.spans | length) > 0)
    and any(.records[].spans[]; .name == "decode")
    and all(.records[].spans[]; .end_ns >= .start_ns)' "$FLIGHT" >/dev/null
echo "flight recorder OK"

# Graceful shutdown on SIGTERM.
kill "$PID"
wait "$PID"
trap - EXIT

# The trace is valid JSONL and frames the session: the startup load,
# the three queries (two warm, all labelled with their impl), the
# delta batch, the batcher's single deadline flush, and the flight
# records interleaved as kind=flight lines.
jq -es 'length > 0
    and any(.[]; .engine == "serve.load")
    and ([.[] | select(.engine == "serve.query")] | length) == 3
    and any(.[]; .engine == "serve.query" and .warm == true)
    and all(.[] | select(.engine == "serve.query"); .impl | length > 0)
    and ([.[] | select(.engine == "serve.update")] | length) == 1
    and all(.[] | select(.engine == "serve.update"); .warm == true and .converged == true)
    and ([.[] | select(.engine == "serve.batch")] | length) == 1
    and all(.[] | select(.engine == "serve.batch"); .flush == "deadline")
    and ([.[] | select(.kind == "flight")] | length) == 4
    and all(.[] | select(.kind == "flight"); .spans | length > 0)' "$TRACE" >/dev/null
echo "telemetry trace OK"

echo "server smoke OK"
