package credo

import (
	"bytes"
	"math"
	"testing"
)

// TestFacadeEndToEnd exercises the public API: generate, save, load,
// observe, run, inspect.
func TestFacadeEndToEnd(t *testing.T) {
	g, err := Synthetic(200, 800, GenConfig{Seed: 1, States: 2, Shared: true})
	if err != nil {
		t.Fatal(err)
	}
	var nodes, edges bytes.Buffer
	if err := SaveMTX(&nodes, &edges, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadMTX(&nodes, &edges)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes != 200 || g2.NumEdges != 800 {
		t.Fatalf("round trip shape %d/%d", g2.NumNodes, g2.NumEdges)
	}
	if err := g2.Observe(0, 1); err != nil {
		t.Fatal(err)
	}
	var eng Engine
	rep, err := eng.Run(g2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Implementation != CEdge {
		t.Errorf("200-node graph selected %v, want C Edge", rep.Implementation)
	}
	if !rep.Result.Converged {
		t.Error("run did not converge")
	}
}

// TestFacadeExactTree checks the exact engine against the builder API.
func TestFacadeExactTree(t *testing.T) {
	b := NewBuilder(2)
	root, _ := b.AddNode([]float32{0.3, 0.7})
	leaf, _ := b.AddNode(nil)
	m := DiagonalJointMatrix(2, 0.9)
	if err := b.AddEdge(root, leaf, &m); err != nil {
		t.Fatal(err)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := ExactTree(g); err != nil {
		t.Fatal(err)
	}
	// p(leaf=0) = 0.3·0.9 + 0.7·0.1 = 0.34.
	if got := float64(g.Belief(leaf)[0]); math.Abs(got-0.34) > 1e-6 {
		t.Errorf("leaf marginal = %v, want 0.34", got)
	}
}

// TestFacadeRunnersAgree cross-checks the re-exported engines.
func TestFacadeRunnersAgree(t *testing.T) {
	g1, err := PowerLaw(300, 1500, GenConfig{Seed: 5, States: 3, Shared: true})
	if err != nil {
		t.Fatal(err)
	}
	g2 := g1.Clone()
	RunNode(g1, Options{})
	RunEdge(g2, Options{})
	for i := range g1.Beliefs {
		if d := math.Abs(float64(g1.Beliefs[i] - g2.Beliefs[i])); d > 1e-3 {
			t.Fatalf("node/edge beliefs differ by %v at %d", d, i)
		}
	}
}

// TestDeviceProfiles sanity-checks the re-exported architecture profiles.
func TestDeviceProfiles(t *testing.T) {
	if Pascal().Cores() != 1920 || Volta().Cores() != 5120 {
		t.Error("device profiles do not match the paper's hardware")
	}
}
