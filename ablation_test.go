package credo

// Ablation benchmarks for the design choices DESIGN.md calls out: CUDA
// block size (the paper fixes 1024 threads per block), damping, the
// frontier work queues versus residual scheduling, and the AoS/SoA layout
// measured in real wall time. Simulated device times are surfaced as
// custom benchmark metrics (sim-ms/op).

import (
	"fmt"
	"testing"

	"credo/internal/bp"
	"credo/internal/cudabp"
	"credo/internal/gen"
	"credo/internal/gpusim"
	"credo/internal/graph"
)

// BenchmarkAblationBlockSize sweeps the CUDA block size on the edge
// paradigm, reporting simulated device milliseconds per run.
func BenchmarkAblationBlockSize(b *testing.B) {
	base, err := gen.Synthetic(5000, 20000, gen.Config{Seed: 1, States: 2, Shared: true})
	if err != nil {
		b.Fatal(err)
	}
	for _, dim := range []int{128, 256, 512, 1024} {
		b.Run(fmt.Sprintf("block%d", dim), func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				dev := gpusim.NewDevice(gpusim.Pascal())
				res, err := cudabp.RunEdge(base.Clone(), dev, cudabp.Options{
					BlockDim: dim,
					Options:  bp.Options{WorkQueue: true},
				})
				if err != nil {
					b.Fatal(err)
				}
				sim += res.SimTime.Seconds() * 1e3
			}
			b.ReportMetric(sim/float64(b.N), "sim-ms/op")
		})
	}
}

// BenchmarkAblationDamping measures the iteration cost of belief damping.
func BenchmarkAblationDamping(b *testing.B) {
	base, err := gen.PowerLaw(3000, 15000, gen.Config{Seed: 2, States: 3, Shared: true})
	if err != nil {
		b.Fatal(err)
	}
	for _, damping := range []float32{0, 0.25, 0.5} {
		b.Run(fmt.Sprintf("damping%.2f", damping), func(b *testing.B) {
			var iters float64
			for i := 0; i < b.N; i++ {
				res := bp.RunNode(base.Clone(), bp.Options{Damping: damping})
				iters += float64(res.Iterations)
			}
			b.ReportMetric(iters/float64(b.N), "iterations/op")
		})
	}
}

// BenchmarkAblationScheduling compares full sweeps, frontier work queues
// (§3.5) and residual scheduling (the related-work discipline) on a
// workload with localized evidence, reporting node updates applied.
func BenchmarkAblationScheduling(b *testing.B) {
	mk := func() *graph.Graph {
		g, err := gen.PowerLaw(4000, 16000, gen.Config{Seed: 3, States: 2, Shared: true, UniformPriors: true})
		if err != nil {
			b.Fatal(err)
		}
		_ = g.Observe(0, 1)
		_ = g.Observe(1, 1)
		return g
	}
	cases := []struct {
		name string
		run  func(*graph.Graph) bp.Result
	}{
		{"sweep", func(g *graph.Graph) bp.Result { return bp.RunNode(g, bp.Options{}) }},
		{"workqueue", func(g *graph.Graph) bp.Result { return bp.RunNode(g, bp.Options{WorkQueue: true}) }},
		{"residual", func(g *graph.Graph) bp.Result { return bp.RunResidual(g, bp.Options{}) }},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			var updates float64
			for i := 0; i < b.N; i++ {
				res := tc.run(mk())
				updates += float64(res.Ops.NodesProcessed)
			}
			b.ReportMetric(updates/float64(b.N), "node-updates/op")
		})
	}
}

// BenchmarkAblationLayout measures the real wall time of a belief sweep
// under the AoS and SoA layouts of §3.4.
func BenchmarkAblationLayout(b *testing.B) {
	const n, states = 100000, 3
	buf := make([]float32, states)
	b.Run("AoS", func(b *testing.B) {
		s := graph.NewAoSStore(n, states)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for v := 0; v < n; v++ {
				s.Load(v, buf)
				buf[0] += 1e-9
				s.Store(v, buf)
			}
		}
	})
	b.Run("SoA", func(b *testing.B) {
		s := graph.NewSoAStore(n, states)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for v := 0; v < n; v++ {
				s.Load(v, buf)
				buf[0] += 1e-9
				s.Store(v, buf)
			}
		}
	})
}
