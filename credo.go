// Package credo is a belief-propagation engine for small and massive
// graphs, reproducing "Rumor Has It: Optimizing the Belief Propagation
// Algorithm for Parallel Processing" (Trotter, Wood, Huang — ICPP
// Workshops '20).
//
// The package is a façade over the internal subsystems:
//
//   - graphs are built with NewBuilder or loaded with LoadMTX / LoadBIF /
//     LoadXMLBIF;
//   - Engine runs loopy belief propagation, choosing among the four
//     implementations (C Edge, C Node, CUDA Edge, CUDA Node) from the
//     graph's metadata exactly as the paper's Credo system does;
//   - ExactTree provides exact two-pass inference for acyclic networks;
//   - the generators produce the synthetic workloads of the paper's
//     benchmark suite.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured results of every table and figure.
package credo

import (
	"io"

	"credo/internal/bif"
	"credo/internal/bp"
	"credo/internal/core"
	"credo/internal/gen"
	"credo/internal/gpusim"
	"credo/internal/graph"
	"credo/internal/mtxbp"
	"credo/internal/poolbp"
	"credo/internal/relaxbp"
	"credo/internal/xmlbif"
)

// Core graph types.
type (
	// Graph is a belief network prepared for propagation.
	Graph = graph.Graph
	// Builder constructs graphs node by node and edge by edge.
	Builder = graph.Builder
	// JointMatrix is the joint probability table p(dst|src) of an edge.
	JointMatrix = graph.JointMatrix
	// Metadata summarizes a graph's structural statistics.
	Metadata = graph.Metadata
)

// Engine types.
type (
	// Engine runs BP with automatic implementation selection.
	Engine = core.Engine
	// Selector picks an implementation from graph metadata.
	Selector = core.Selector
	// Implementation identifies one of the four back ends.
	Implementation = core.Implementation
	// Report describes one engine execution.
	Report = core.Report
	// Options configures a propagation run.
	Options = bp.Options
	// Result reports a propagation outcome.
	Result = bp.Result
	// ArchProfile describes a simulated CUDA device.
	ArchProfile = gpusim.ArchProfile
)

// The four implementations of the paper's §3.6, plus the persistent
// worker-pool engine this reproduction adds (enable it with
// Selector.PoolWorkers or run it directly with RunPoolNode/RunPoolEdge)
// and the relaxed-priority residual engine (enable it with
// Selector.RelaxWorkers or run it directly with RunRelax).
const (
	CEdge    = core.CEdge
	CNode    = core.CNode
	CUDAEdge = core.CUDAEdge
	CUDANode = core.CUDANode
	Pool     = core.Pool
	Relax    = core.Relax
)

// PoolOptions configures the persistent worker-pool engine.
type PoolOptions = poolbp.Options

// RelaxOptions configures the relaxed-priority residual engine.
type RelaxOptions = relaxbp.Options

// NewBuilder returns a graph builder for nodes of the given belief width.
func NewBuilder(states int) *Builder { return graph.NewBuilder(states) }

// NewJointMatrix allocates a rows x cols joint probability matrix.
func NewJointMatrix(rows, cols int) JointMatrix { return graph.NewJointMatrix(rows, cols) }

// DiagonalJointMatrix returns the "keep your neighbour's state with
// probability keep" coupling of the paper's shared-matrix refinement.
func DiagonalJointMatrix(states int, keep float32) JointMatrix {
	return graph.DiagonalJointMatrix(states, keep)
}

// Pascal returns the GTX 1070 device profile of the paper's evaluation.
func Pascal() ArchProfile { return gpusim.Pascal() }

// Volta returns the V100 device profile of the paper's portability study.
func Volta() ArchProfile { return gpusim.Volta() }

// LoadMTX reads a belief network from the streaming mtxbp format: a node
// reader and an edge reader (paper §3.2).
func LoadMTX(nodes, edges io.Reader) (*Graph, error) { return mtxbp.Read(nodes, edges) }

// LoadMTXFiles reads the mtxbp node and edge files at the given paths.
func LoadMTXFiles(nodePath, edgePath string) (*Graph, error) {
	return mtxbp.ReadFiles(nodePath, edgePath)
}

// SaveMTX writes a belief network in the streaming mtxbp format.
func SaveMTX(nodes, edges io.Writer, g *Graph) error { return mtxbp.Write(nodes, edges, g) }

// LoadBIF parses a Bayesian Interchange Format document.
func LoadBIF(r io.Reader) (*Graph, error) { return bif.Parse(r) }

// LoadXMLBIF parses an XMLBIF v0.3 document.
func LoadXMLBIF(r io.Reader) (*Graph, error) { return xmlbif.Parse(r) }

// Undirected returns the §3.3 MRF form of a directed network: every link
// stored as two directed edges so loopy messages flow both ways.
func Undirected(g *Graph) (*Graph, error) { return g.Undirected() }

// ObserveSoft applies virtual (likelihood) evidence to a node without
// clamping it.
func ObserveSoft(g *Graph, v int32, likelihood []float32) error {
	return g.ObserveSoft(v, likelihood)
}

// ExactTree runs exact two-pass sum-product BP on an acyclic network,
// leaving exact marginals in the graph's beliefs.
func ExactTree(g *Graph) error { return bp.ExactTree(g) }

// RunNode executes loopy BP with per-node processing, single-threaded.
func RunNode(g *Graph, opts Options) Result { return bp.RunNode(g, opts) }

// RunEdge executes loopy BP with per-edge processing, single-threaded.
func RunEdge(g *Graph, opts Options) Result { return bp.RunEdge(g, opts) }

// RunResidual executes asynchronous residual-scheduled BP (the
// related-work discipline of Gonzalez et al.).
func RunResidual(g *Graph, opts Options) Result { return bp.RunResidual(g, opts) }

// RunMaxProduct executes loopy max-product BP; DecodeMAP reads off the
// approximate MAP assignment afterwards.
func RunMaxProduct(g *Graph, opts Options) Result { return bp.RunMaxProduct(g, opts) }

// RunPoolNode executes per-node loopy BP on the persistent worker pool.
// The result is bitwise identical for any worker count.
func RunPoolNode(g *Graph, opts PoolOptions) Result { return poolbp.RunNode(g, opts) }

// RunPoolEdge executes per-edge loopy BP on the persistent worker pool,
// combining messages into the destination accumulators with atomic adds.
func RunPoolEdge(g *Graph, opts PoolOptions) Result { return poolbp.RunEdge(g, opts) }

// RunRelax executes relaxed-priority residual BP: the persistent worker
// team pulls the largest pending residuals from a sharded MultiQueue,
// converging in far fewer message updates than synchronous sweeps.
func RunRelax(g *Graph, opts RelaxOptions) Result { return relaxbp.Run(g, opts) }

// DecodeMAP returns each node's argmax belief state.
func DecodeMAP(g *Graph) []int { return bp.DecodeMAP(g) }

// ExactMarginal computes the exact marginal of one node by variable
// elimination — exponential in treewidth, exact on loopy graphs.
func ExactMarginal(g *Graph, query int32) ([]float64, error) {
	return bp.VariableElimination(g, query)
}

// GenConfig configures the synthetic generators.
type GenConfig = gen.Config

// Synthetic generates the paper's uniform-random NxM graph family.
func Synthetic(n, m int, cfg GenConfig) (*Graph, error) { return gen.Synthetic(n, m, cfg) }

// Kronecker generates an R-MAT graph matching the kron-g500 family.
func Kronecker(scale, edgeFactor int, cfg GenConfig) (*Graph, error) {
	return gen.Kronecker(scale, edgeFactor, cfg)
}

// PowerLaw generates a preferential-attachment graph standing in for the
// social-network benchmarks.
func PowerLaw(n, m int, cfg GenConfig) (*Graph, error) { return gen.PowerLaw(n, m, cfg) }

// Grid generates a w x h lattice MRF (the image-correction topology).
func Grid(w, h int, cfg GenConfig) (*Graph, error) { return gen.Grid(w, h, cfg) }
